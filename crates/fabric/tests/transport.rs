//! Integration tests for the RC transport: delivery, ordering, RNR NAK and
//! retry, end-to-end credits, RDMA semantics, and error paths.

use ibfabric::*;
use ibsim::{Sim, SimConfig, SimDuration, SimTime};

/// Two connected nodes with one QP each sharing a per-node CQ, plus a
/// scratch MR per node.
struct Pair {
    sim: Sim<Fabric>,
    cq_a: CqId,
    cq_b: CqId,
    qp_a: QpId,
    qp_b: QpId,
    mr_a: MrId,
    mr_b: MrId,
}

fn pair_with(params: FabricParams, attrs: QpAttrs, preposted_b: usize) -> Pair {
    let mut fabric = Fabric::new(params);
    let a = fabric.add_node();
    let b = fabric.add_node();
    let cq_a = fabric.create_cq(a);
    let cq_b = fabric.create_cq(b);
    let qp_a = fabric.create_qp(a, cq_a, cq_a, attrs);
    let qp_b = fabric.create_qp(b, cq_b, cq_b, attrs);
    let mr_a = fabric.register(a, 1 << 20, Access::FULL);
    let mr_b = fabric.register(b, 1 << 20, Access::FULL);
    for i in 0..preposted_b {
        fabric
            .post_recv(
                qp_b,
                RecvWr {
                    wr_id: 1000 + i as u64,
                    mr: mr_b,
                    offset: i * 4096,
                    len: 4096,
                },
            )
            .unwrap();
    }
    let sim = Sim::new(fabric, SimConfig::default());
    sim.with_world(|ctx| connect(ctx, qp_a, qp_b));
    Pair {
        sim,
        cq_a,
        cq_b,
        qp_a,
        qp_b,
        mr_a,
        mr_b,
    }
}

fn pair(preposted_b: usize) -> Pair {
    pair_with(FabricParams::mt23108(), QpAttrs::default(), preposted_b)
}

#[test]
fn single_send_delivers_payload_and_completions() {
    let mut p = pair(1);
    p.sim.with_world(|ctx| {
        post_send(ctx, p.qp_a, SendWr::inline_send(42, vec![7u8; 100])).unwrap();
    });
    p.sim.run().unwrap();
    let mut f = p.sim.into_world();

    let recv = f.poll_cq(p.cq_b, 16);
    assert_eq!(recv.len(), 1);
    assert_eq!(recv[0].wr_id, 1000);
    assert_eq!(recv[0].opcode, CqeOpcode::RecvComplete);
    assert!(recv[0].is_success());
    assert_eq!(recv[0].byte_len, 100);
    assert_eq!(&f.mr_bytes(p.mr_b)[..100], &[7u8; 100][..]);

    let send = f.poll_cq(p.cq_a, 16);
    assert_eq!(send.len(), 1);
    assert_eq!(send[0].wr_id, 42);
    assert_eq!(send[0].opcode, CqeOpcode::SendComplete);
    assert!(send[0].is_success());
}

#[test]
fn messages_deliver_in_order() {
    let mut p = pair(32);
    p.sim.with_world(|ctx| {
        for i in 0..20u64 {
            post_send(
                ctx,
                p.qp_a,
                SendWr::inline_send(i, vec![i as u8; 64 + i as usize]),
            )
            .unwrap();
        }
    });
    p.sim.run().unwrap();
    let mut f = p.sim.into_world();
    let recv = f.poll_cq(p.cq_b, 64);
    assert_eq!(recv.len(), 20);
    // Receive WQEs are consumed FIFO, so wr_ids ascend with send order.
    for (i, c) in recv.iter().enumerate() {
        assert_eq!(c.wr_id, 1000 + i as u64, "delivery order violated");
        assert_eq!(c.byte_len, 64 + i);
    }
    let sends = f.poll_cq(p.cq_a, 64);
    assert_eq!(sends.len(), 20);
    for (i, c) in sends.iter().enumerate() {
        assert_eq!(c.wr_id, i as u64, "send completion order violated");
    }
}

#[test]
fn multi_packet_message_roundtrip() {
    let mut p = pair(0);
    let n = 300_000; // ~147 packets
    let mut fillsrc = vec![0u8; n];
    for (i, b) in fillsrc.iter_mut().enumerate() {
        *b = (i % 251) as u8;
    }
    {
        // Post a big-enough receive.
        p.sim.with_world(|ctx| {
            ctx.world
                .post_recv(
                    p.qp_b,
                    RecvWr {
                        wr_id: 9,
                        mr: p.mr_b,
                        offset: 0,
                        len: n,
                    },
                )
                .unwrap();
        });
        let payload = fillsrc.clone();
        p.sim.with_world(move |ctx| {
            post_send(ctx, p.qp_a, SendWr::inline_send(1, payload)).unwrap();
        });
    }
    p.sim.run().unwrap();
    let mut f = p.sim.into_world();
    let recv = f.poll_cq(p.cq_b, 4);
    assert_eq!(recv.len(), 1);
    assert_eq!(recv[0].byte_len, n);
    assert_eq!(f.mr_bytes(p.mr_b)[..n], fillsrc[..]);
}

#[test]
fn rnr_nak_then_retry_succeeds_when_buffer_posted() {
    // No receive posted: the send RNR-NAKs; a buffer is posted shortly
    // after, and the RNR timer retry delivers it.
    let mut p = pair(0);
    p.sim.with_world(|ctx| {
        post_send(ctx, p.qp_a, SendWr::inline_send(1, vec![5u8; 32])).unwrap();
        // Post the receive 10us later (before the 60us RNR timer fires).
        ctx.schedule_at(SimTime::from_nanos(10_000), move |c| {
            c.world
                .post_recv(
                    p.qp_b,
                    RecvWr {
                        wr_id: 7,
                        mr: p.mr_b,
                        offset: 0,
                        len: 64,
                    },
                )
                .unwrap();
        });
    });
    p.sim.run().unwrap();
    let mut f = p.sim.into_world();
    let recv = f.poll_cq(p.cq_b, 4);
    assert_eq!(recv.len(), 1);
    assert!(recv[0].is_success());
    assert_eq!(f.qp(p.qp_b).stats.rnr_naks_sent.get(), 1);
    assert_eq!(f.qp(p.qp_a).stats.rnr_naks_received.get(), 1);
    assert!(f.qp(p.qp_a).stats.retransmissions.get() >= 1);
    // The retry happened after the RNR timer: check timing.
    let send = f.poll_cq(p.cq_a, 4);
    assert!(send[0].is_success());
}

#[test]
fn rnr_retry_exhaustion_fails_the_qp() {
    let attrs = QpAttrs {
        rnr_retry: Some(2),
        ..Default::default()
    };
    let mut p = pair_with(FabricParams::mt23108(), attrs, 0);
    p.sim.with_world(|ctx| {
        post_send(ctx, p.qp_a, SendWr::inline_send(1, vec![1u8; 8])).unwrap();
        post_send(ctx, p.qp_a, SendWr::inline_send(2, vec![2u8; 8])).unwrap();
    });
    // Never post a receive: retries exhaust.
    p.sim.run().unwrap();
    let mut f = p.sim.into_world();
    assert_eq!(f.qp(p.qp_a).state(), QpState::Error);
    let cqes = f.poll_cq(p.cq_a, 16);
    assert!(cqes
        .iter()
        .any(|c| c.status == CqeStatus::RnrRetryExceeded && c.wr_id == 1));
    assert!(cqes
        .iter()
        .any(|c| c.status == CqeStatus::WorkRequestFlushed && c.wr_id == 2));
    // Posting on an errored QP is rejected.
    let sim = Sim::new(f, SimConfig::default());
    sim.with_world(|ctx| {
        let err = post_send(ctx, p.qp_a, SendWr::inline_send(3, vec![0u8; 8])).unwrap_err();
        assert_eq!(err, VerbsError::InvalidQpState);
    });
}

#[test]
fn infinite_rnr_retry_never_gives_up() {
    let attrs = QpAttrs {
        rnr_retry: None,
        ..Default::default()
    };
    let mut p = pair_with(FabricParams::mt23108(), attrs, 0);
    p.sim.with_world(|ctx| {
        post_send(ctx, p.qp_a, SendWr::inline_send(1, vec![1u8; 8])).unwrap();
        // Post the receive after ~20 RNR periods.
        ctx.schedule_at(SimTime::from_nanos(1_300_000), move |c| {
            c.world
                .post_recv(
                    p.qp_b,
                    RecvWr {
                        wr_id: 7,
                        mr: p.mr_b,
                        offset: 0,
                        len: 64,
                    },
                )
                .unwrap();
        });
    });
    p.sim.run().unwrap();
    let mut f = p.sim.into_world();
    assert_eq!(f.qp(p.qp_a).state(), QpState::ReadyToSend);
    let recv = f.poll_cq(p.cq_b, 4);
    assert_eq!(recv.len(), 1);
    assert!(recv[0].is_success());
    assert!(
        f.qp(p.qp_a).stats.rnr_naks_received.get() >= 8,
        "expected many RNR retries, saw {}",
        f.qp(p.qp_a).stats.rnr_naks_received.get()
    );
}

#[test]
fn end_to_end_credits_limit_probing() {
    // Receiver posts 4 buffers; sender fires 10 sends. The first 4 are
    // covered by initial credits; afterwards the sender must probe one at
    // a time, so some RNR NAKs occur but everything eventually lands once
    // receives are replenished.
    let mut p = pair(4);
    p.sim.with_world(|ctx| {
        for i in 0..10u64 {
            post_send(ctx, p.qp_a, SendWr::inline_send(i, vec![i as u8; 16])).unwrap();
        }
        // Replenish 6 more receives after 200us.
        ctx.schedule_at(SimTime::from_nanos(200_000), move |c| {
            for i in 0..6usize {
                c.world
                    .post_recv(
                        p.qp_b,
                        RecvWr {
                            wr_id: 2000 + i as u64,
                            mr: p.mr_b,
                            offset: (4 + i) * 4096,
                            len: 4096,
                        },
                    )
                    .unwrap();
            }
        });
    });
    p.sim.run().unwrap();
    let mut f = p.sim.into_world();
    let recv = f.poll_cq(p.cq_b, 32);
    assert_eq!(recv.iter().filter(|c| c.is_success()).count(), 10);
    let sends = f.poll_cq(p.cq_a, 32);
    assert_eq!(sends.iter().filter(|c| c.is_success()).count(), 10);
    // The sender probed with zero credits at least once.
    assert!(f.qp(p.qp_a).stats.zero_credit_probes.get() >= 1);
}

#[test]
fn credits_resume_without_rnr_when_acks_flow() {
    // Symmetric ping-pong style traffic: receiver consumes and reposts
    // instantly, so ACK credit updates keep the sender fed and no RNR NAK
    // ever fires even with a small buffer pool and many messages.
    let mut p = pair(8);
    p.sim.with_world(|ctx| {
        for i in 0..8u64 {
            post_send(ctx, p.qp_a, SendWr::inline_send(i, vec![0u8; 16])).unwrap();
        }
    });
    // Consume-and-repost loop driven by a polling process.
    let qp_b = p.qp_b;
    let cq_b = p.cq_b;
    let mr_b = p.mr_b;
    let mut remaining = 24u64; // 8 initial + 16 more posted reactively
    p.sim.spawn("receiver", move |mut proc| async move {
        let mut seen = 0u64;
        let mut next_send = 8u64;
        while seen < remaining {
            let got = proc.with(|ctx| {
                let cqes = ctx.world.poll_cq(cq_b, 16);
                let n = cqes.len() as u64;
                for c in &cqes {
                    assert!(c.is_success());
                    // Repost the consumed buffer immediately.
                    ctx.world
                        .post_recv(
                            qp_b,
                            RecvWr {
                                wr_id: c.wr_id,
                                mr: mr_b,
                                offset: 0,
                                len: 4096,
                            },
                        )
                        .unwrap();
                }
                n
            });
            if got == 0 {
                let w = proc.waker();
                proc.with(|ctx| ctx.world.req_notify_cq(cq_b, w));
                proc.park("waiting for recv cqe").await;
            }
            seen += got;
        }
        let _ = &mut next_send;
        let _ = &mut remaining;
    });
    // A second batch of sends, later.
    p.sim.with_world(|ctx| {
        ctx.schedule_at(SimTime::from_nanos(500_000), move |c| {
            // 16 more sends; receiver reposted, credits piggybacked on acks.
            // (Scheduling post_send from an event.)
            for i in 8..24u64 {
                post_send(c, p.qp_a, SendWr::inline_send(i, vec![0u8; 16])).unwrap();
            }
        });
    });
    p.sim.run().unwrap();
    let f = p.sim.into_world();
    assert_eq!(
        f.qp(p.qp_b).stats.rnr_naks_sent.get(),
        0,
        "no RNR under replenished credits"
    );
    assert_eq!(f.stats.msgs_delivered.get(), 24);
}

#[test]
fn rdma_write_places_data_without_recv_wqe() {
    let mut p = pair(0); // zero receives posted: RDMA must still work
    let data: Vec<u8> = (0..5000u32).map(|i| (i % 256) as u8).collect();
    let expect = data.clone();
    p.sim.with_world(move |ctx| {
        post_send(ctx, p.qp_a, SendWr::rdma_write(11, data, p.mr_b, 12345)).unwrap();
    });
    p.sim.run().unwrap();
    let mut f = p.sim.into_world();
    assert_eq!(&f.mr_bytes(p.mr_b)[12345..12345 + 5000], &expect[..]);
    let send = f.poll_cq(p.cq_a, 4);
    assert_eq!(send.len(), 1);
    assert_eq!(send[0].opcode, CqeOpcode::RdmaWriteComplete);
    assert!(send[0].is_success());
    // No receive completion at the target.
    assert!(f.poll_cq(p.cq_b, 4).is_empty());
    assert_eq!(f.qp(p.qp_b).stats.rnr_naks_sent.get(), 0);
}

#[test]
fn rdma_read_pulls_remote_data() {
    let mut p = pair(0);
    p.sim.with_world(|ctx| {
        let src = ctx.world.mr_bytes_mut(p.mr_b);
        for (i, b) in src[500..1500].iter_mut().enumerate() {
            *b = (i % 199) as u8;
        }
        post_send(
            ctx,
            p.qp_a,
            SendWr::rdma_read(21, p.mr_b, 500, p.mr_a, 0, 1000),
        )
        .unwrap();
    });
    p.sim.run().unwrap();
    let mut f = p.sim.into_world();
    let cqes = f.poll_cq(p.cq_a, 4);
    assert_eq!(cqes.len(), 1);
    assert_eq!(cqes[0].opcode, CqeOpcode::RdmaReadComplete);
    assert!(cqes[0].is_success());
    assert_eq!(cqes[0].byte_len, 1000);
    let got = f.mr_bytes(p.mr_a)[..1000].to_vec();
    let want: Vec<u8> = (0..1000).map(|i| (i % 199) as u8).collect();
    assert_eq!(got, want);
}

#[test]
fn rdma_write_access_violation_errors_the_qp() {
    let mut fabric = Fabric::new(FabricParams::mt23108());
    let a = fabric.add_node();
    let b = fabric.add_node();
    let cq_a = fabric.create_cq(a);
    let cq_b = fabric.create_cq(b);
    let qp_a = fabric.create_qp(a, cq_a, cq_a, QpAttrs::default());
    let qp_b = fabric.create_qp(b, cq_b, cq_b, QpAttrs::default());
    // Local-write only: remote writes must be rejected.
    let mr_b = fabric.register(b, 4096, Access::LOCAL_WRITE);
    let mut sim = Sim::new(fabric, SimConfig::default());
    sim.with_world(|ctx| {
        connect(ctx, qp_a, qp_b);
        post_send(ctx, qp_a, SendWr::rdma_write(1, vec![1, 2, 3], mr_b, 0)).unwrap();
    });
    sim.run().unwrap();
    let mut f = sim.into_world();
    let cqes = f.poll_cq(cq_a, 4);
    assert_eq!(cqes.len(), 1);
    assert_eq!(cqes[0].status, CqeStatus::RemoteAccessError);
    assert_eq!(f.qp(qp_a).state(), QpState::Error);
    // Target memory untouched.
    assert_eq!(&f.mr_bytes(mr_b)[..3], &[0, 0, 0]);
}

#[test]
fn remote_access_error_flushes_queued_work_end_to_end() {
    let mut fabric = Fabric::new(FabricParams::mt23108());
    let a = fabric.add_node();
    let b = fabric.add_node();
    let cq_a = fabric.create_cq(a);
    let cq_b = fabric.create_cq(b);
    let qp_a = fabric.create_qp(a, cq_a, cq_a, QpAttrs::default());
    let qp_b = fabric.create_qp(b, cq_b, cq_b, QpAttrs::default());
    // No REMOTE_WRITE permission: the write's access check must fail.
    let mr_b = fabric.register(b, 4096, Access::LOCAL_WRITE);
    fabric
        .post_recv(
            qp_b,
            RecvWr {
                wr_id: 500,
                mr: mr_b,
                offset: 0,
                len: 4096,
            },
        )
        .unwrap();
    let mut sim = Sim::new(fabric, SimConfig::default());
    sim.with_world(|ctx| {
        connect(ctx, qp_a, qp_b);
        // A bad write with an ordinary send queued behind it.
        post_send(ctx, qp_a, SendWr::rdma_write(1, vec![1, 2, 3], mr_b, 0)).unwrap();
        post_send(ctx, qp_a, SendWr::inline_send(2, vec![7u8; 64])).unwrap();
    });
    sim.run().unwrap();
    let mut f = sim.into_world();

    let cqes = f.poll_cq(cq_a, 8);
    assert_eq!(cqes.len(), 2);
    assert_eq!(cqes[0].wr_id, 1);
    assert_eq!(cqes[0].status, CqeStatus::RemoteAccessError);
    assert_eq!(cqes[1].wr_id, 2);
    assert_eq!(cqes[1].status, CqeStatus::WorkRequestFlushed);
    // Display/code follow the ibv_wc encoding so logs read like verbs.
    assert_eq!(cqes[0].status.code(), 10);
    assert_eq!(
        cqes[0].status.to_string(),
        "remote access error (wc status 10)"
    );
    assert_eq!(cqes[1].status.code(), 5);
    assert_eq!(
        cqes[1].status.to_string(),
        "work request flushed (wc status 5)"
    );

    // Both endpoints end in the error state; the responder's posted
    // receive flushes so its software observes the teardown too.
    assert_eq!(f.qp(qp_a).state(), QpState::Error);
    assert_eq!(f.qp(qp_b).state(), QpState::Error);
    let recvs = f.poll_cq(cq_b, 8);
    assert_eq!(recvs.len(), 1);
    assert_eq!(recvs[0].wr_id, 500);
    assert_eq!(recvs[0].status, CqeStatus::WorkRequestFlushed);
}

#[test]
fn rdma_write_out_of_bounds_is_rejected() {
    let mut p = pair(0);
    p.sim.with_world(|ctx| {
        let len = ctx.world.mr_bytes(p.mr_b).len();
        post_send(
            ctx,
            p.qp_a,
            SendWr::rdma_write(1, vec![0u8; 64], p.mr_b, len - 10),
        )
        .unwrap();
    });
    p.sim.run().unwrap();
    let mut f = p.sim.into_world();
    let cqes = f.poll_cq(p.cq_a, 4);
    assert_eq!(cqes[0].status, CqeStatus::RemoteAccessError);
}

#[test]
fn message_longer_than_recv_buffer_reports_length_error() {
    let mut p = pair(0);
    p.sim.with_world(|ctx| {
        ctx.world
            .post_recv(
                p.qp_b,
                RecvWr {
                    wr_id: 5,
                    mr: p.mr_b,
                    offset: 0,
                    len: 16,
                },
            )
            .unwrap();
        post_send(ctx, p.qp_a, SendWr::inline_send(1, vec![0u8; 64])).unwrap();
    });
    p.sim.run().unwrap();
    let mut f = p.sim.into_world();
    let recv = f.poll_cq(p.cq_b, 4);
    assert_eq!(recv.len(), 1);
    assert_eq!(recv[0].status, CqeStatus::LocalLengthError);
}

#[test]
fn post_recv_validation() {
    let mut fabric = Fabric::new(FabricParams::mt23108());
    let a = fabric.add_node();
    let b = fabric.add_node();
    let cq_a = fabric.create_cq(a);
    let qp_a = fabric.create_qp(a, cq_a, cq_a, QpAttrs::default());
    let mr_a = fabric.register(a, 4096, Access::LOCAL_WRITE);
    let mr_b = fabric.register(b, 4096, Access::FULL);
    let mr_ro = fabric.register(a, 4096, Access::LOCAL_READ);

    // Wrong node.
    assert_eq!(
        fabric.post_recv(
            qp_a,
            RecvWr {
                wr_id: 1,
                mr: mr_b,
                offset: 0,
                len: 16
            }
        ),
        Err(VerbsError::WrongNode)
    );
    // No local write permission.
    assert_eq!(
        fabric.post_recv(
            qp_a,
            RecvWr {
                wr_id: 1,
                mr: mr_ro,
                offset: 0,
                len: 16
            }
        ),
        Err(VerbsError::AccessDenied)
    );
    // Out of bounds.
    assert_eq!(
        fabric.post_recv(
            qp_a,
            RecvWr {
                wr_id: 1,
                mr: mr_a,
                offset: 4090,
                len: 16
            }
        ),
        Err(VerbsError::OutOfBounds)
    );
    // Valid.
    assert!(fabric
        .post_recv(
            qp_a,
            RecvWr {
                wr_id: 1,
                mr: mr_a,
                offset: 0,
                len: 4096
            }
        )
        .is_ok());
    assert_eq!(fabric.qp(qp_a).posted_recvs(), 1);
}

#[test]
fn post_send_requires_connection() {
    let mut fabric = Fabric::new(FabricParams::mt23108());
    let a = fabric.add_node();
    let cq_a = fabric.create_cq(a);
    let qp_a = fabric.create_qp(a, cq_a, cq_a, QpAttrs::default());
    let sim = Sim::new(fabric, SimConfig::default());
    sim.with_world(|ctx| {
        let err = post_send(ctx, qp_a, SendWr::inline_send(1, vec![1])).unwrap_err();
        assert_eq!(err, VerbsError::InvalidQpState);
    });
}

#[test]
fn bandwidth_is_dma_limited_for_large_transfers() {
    // One 1 MiB RDMA write: effective bandwidth should approach the PCI-X
    // DMA rate (880 MB/s), not the 1 GB/s link rate.
    let mut p = pair(0);
    let n = 1 << 20;
    p.sim.with_world(|ctx| {
        post_send(ctx, p.qp_a, SendWr::rdma_write(1, vec![0xAB; n], p.mr_b, 0)).unwrap();
    });
    let report = p.sim.run().unwrap();
    let secs = report.end_time.as_secs_f64();
    let bw = n as f64 / secs;
    assert!(
        bw > 700e6 && bw < 900e6,
        "expected ~DMA-limited bandwidth, measured {:.1} MB/s",
        bw / 1e6
    );
}

#[test]
fn small_message_fabric_latency_in_expected_band() {
    // Raw fabric one-way latency for a 4-byte send (no MPI software costs):
    // should land in the 3.5–6 us band the MPI layer builds on.
    let mut p = pair(1);
    p.sim.with_world(|ctx| {
        post_send(ctx, p.qp_a, SendWr::inline_send(1, vec![0u8; 4])).unwrap();
    });
    p.sim.run().unwrap();
    let mut f = p.sim.into_world();
    // Find when the recv CQE was available: re-run style check via stats —
    // here we simply assert delivery happened and bound the run end time,
    // which includes the ACK path.
    assert_eq!(f.poll_cq(p.cq_b, 4).len(), 1);
}

#[test]
fn concurrent_senders_share_egress_port() {
    // Nodes 0 and 1 both blast node 2; total delivered bandwidth at node 2
    // cannot exceed one link's worth.
    let mut fabric = Fabric::new(FabricParams::mt23108());
    let n0 = fabric.add_node();
    let n1 = fabric.add_node();
    let n2 = fabric.add_node();
    let cq0 = fabric.create_cq(n0);
    let cq1 = fabric.create_cq(n1);
    let cq2 = fabric.create_cq(n2);
    let q0 = fabric.create_qp(n0, cq0, cq0, QpAttrs::default());
    let q1 = fabric.create_qp(n1, cq1, cq1, QpAttrs::default());
    let q2a = fabric.create_qp(n2, cq2, cq2, QpAttrs::default());
    let q2b = fabric.create_qp(n2, cq2, cq2, QpAttrs::default());
    let mr2 = fabric.register(n2, 8 << 20, Access::FULL);
    let n = 2 << 20;
    let mut sim = Sim::new(fabric, SimConfig::default());
    sim.with_world(|ctx| {
        connect(ctx, q0, q2a);
        connect(ctx, q1, q2b);
        post_send(ctx, q0, SendWr::rdma_write(1, vec![1; n], mr2, 0)).unwrap();
        post_send(ctx, q1, SendWr::rdma_write(2, vec![2; n], mr2, n)).unwrap();
    });
    let report = sim.run().unwrap();
    let secs = report.end_time.as_secs_f64();
    let agg_bw = (2 * n) as f64 / secs;
    // Two senders into one receiver: aggregate must stay under a single
    // receiver's DMA rate (plus a sliver of pipelining slack).
    assert!(
        agg_bw < 950e6,
        "incast should be receiver-limited, measured {:.1} MB/s",
        agg_bw / 1e6
    );
}

#[test]
fn retransmission_counts_bytes_twice() {
    let mut p = pair(0);
    p.sim.with_world(|ctx| {
        post_send(ctx, p.qp_a, SendWr::inline_send(1, vec![0u8; 1000])).unwrap();
        ctx.schedule_at(SimTime::from_nanos(30_000), move |c| {
            c.world
                .post_recv(
                    p.qp_b,
                    RecvWr {
                        wr_id: 7,
                        mr: p.mr_b,
                        offset: 0,
                        len: 4096,
                    },
                )
                .unwrap();
        });
    });
    p.sim.run().unwrap();
    let f = p.sim.into_world();
    let launched = f.qp(p.qp_a).stats.bytes_launched.get();
    assert!(
        launched >= 2000,
        "retransmit should re-count bytes: {launched}"
    );
    assert_eq!(f.stats.bytes_delivered.get(), 1000);
}

#[test]
fn rnr_timer_sets_retry_spacing() {
    // With a 60us timer and receive posted at 250us, expect ~4-5 NAKs.
    let mut params = FabricParams::mt23108();
    params.rnr_timer = SimDuration::micros(60);
    let mut p = pair_with(
        params,
        QpAttrs {
            rnr_retry: None,
            ..Default::default()
        },
        0,
    );
    p.sim.with_world(|ctx| {
        post_send(ctx, p.qp_a, SendWr::inline_send(1, vec![0u8; 8])).unwrap();
        ctx.schedule_at(SimTime::from_nanos(250_000), move |c| {
            c.world
                .post_recv(
                    p.qp_b,
                    RecvWr {
                        wr_id: 7,
                        mr: p.mr_b,
                        offset: 0,
                        len: 64,
                    },
                )
                .unwrap();
        });
    });
    p.sim.run().unwrap();
    let f = p.sim.into_world();
    let naks = f.qp(p.qp_a).stats.rnr_naks_received.get();
    assert!(
        (3..=6).contains(&naks),
        "expected ~4-5 NAKs at 60us spacing, got {naks}"
    );
}
