//! Unreliable Datagram transport tests (the paper's §8 future-work
//! direction): connectionless delivery, silent drops, no retransmission.

use ibfabric::*;
use ibsim::{Sim, SimConfig};

struct UdPair {
    sim: Sim<Fabric>,
    cq_a: CqId,
    cq_b: CqId,
    qp_a: QpId,
    qp_b: QpId,
    mr_b: MrId,
}

fn ud_pair(preposted_b: usize) -> UdPair {
    let mut fabric = Fabric::new(FabricParams::mt23108());
    let a = fabric.add_node();
    let b = fabric.add_node();
    let cq_a = fabric.create_cq(a);
    let cq_b = fabric.create_cq(b);
    let qp_a = fabric.create_qp(a, cq_a, cq_a, QpAttrs::ud());
    let qp_b = fabric.create_qp(b, cq_b, cq_b, QpAttrs::ud());
    let mr_b = fabric.register(b, 1 << 16, Access::LOCAL_WRITE);
    for i in 0..preposted_b {
        fabric
            .post_recv(
                qp_b,
                RecvWr {
                    wr_id: 100 + i as u64,
                    mr: mr_b,
                    offset: i * 2048,
                    len: 2048,
                },
            )
            .unwrap();
    }
    let sim = Sim::new(fabric, SimConfig::default());
    UdPair {
        sim,
        cq_a,
        cq_b,
        qp_a,
        qp_b,
        mr_b,
    }
}

#[test]
fn datagram_delivers_without_connection() {
    let mut p = ud_pair(1);
    p.sim.with_world(|ctx| {
        post_send_ud(
            ctx,
            p.qp_a,
            p.qp_b,
            SendWr::inline_send(7, b"dgram".to_vec()),
        )
        .unwrap();
    });
    p.sim.run().unwrap();
    let mut f = p.sim.into_world();
    let recv = f.poll_cq(p.cq_b, 4);
    assert_eq!(recv.len(), 1);
    assert!(recv[0].is_success());
    assert_eq!(recv[0].byte_len, 5);
    assert_eq!(&f.mr_bytes(p.mr_b)[..5], b"dgram");
    // Local send completion without any acknowledgement machinery.
    let send = f.poll_cq(p.cq_a, 4);
    assert_eq!(send.len(), 1);
    assert!(send[0].is_success());
    assert_eq!(f.qp(p.qp_a).inflight_msgs(), 0);
}

#[test]
fn overflow_datagrams_are_silently_dropped() {
    // 5 datagrams into 2 buffers: 3 vanish, no RNR, no retransmit.
    let mut p = ud_pair(2);
    p.sim.with_world(|ctx| {
        for i in 0..5u64 {
            post_send_ud(
                ctx,
                p.qp_a,
                p.qp_b,
                SendWr::inline_send(i, vec![i as u8; 32]),
            )
            .unwrap();
        }
    });
    p.sim.run().unwrap();
    let mut f = p.sim.into_world();
    let recv = f.poll_cq(p.cq_b, 16);
    assert_eq!(recv.len(), 2, "only the buffered datagrams arrive");
    assert_eq!(f.stats.ud_drops.get(), 3);
    assert_eq!(f.stats.rnr_naks.get(), 0, "UD never NAKs");
    assert_eq!(f.stats.retransmissions.get(), 0, "UD never retries");
    // All 5 sends completed locally regardless.
    assert_eq!(f.poll_cq(p.cq_a, 16).len(), 5);
}

#[test]
fn datagrams_are_mtu_bounded() {
    let mut p = ud_pair(1);
    p.sim.with_world(|ctx| {
        let err =
            post_send_ud(ctx, p.qp_a, p.qp_b, SendWr::inline_send(1, vec![0u8; 4096])).unwrap_err();
        assert_eq!(err, VerbsError::MessageTooLong);
        // Exactly MTU is fine.
        post_send_ud(ctx, p.qp_a, p.qp_b, SendWr::inline_send(2, vec![0u8; 2048])).unwrap();
    });
    p.sim.run().unwrap();
    let mut f = p.sim.into_world();
    assert_eq!(f.poll_cq(p.cq_b, 4).len(), 1);
}

#[test]
fn rdma_rejected_on_ud() {
    let p = ud_pair(1);
    p.sim.with_world(|ctx| {
        let err = post_send_ud(
            ctx,
            p.qp_a,
            p.qp_b,
            SendWr::rdma_write(1, vec![1, 2], p.mr_b, 0),
        )
        .unwrap_err();
        assert_eq!(err, VerbsError::InvalidQpState);
    });
}

#[test]
fn ud_to_rc_qp_rejected() {
    let mut fabric = Fabric::new(FabricParams::mt23108());
    let a = fabric.add_node();
    let b = fabric.add_node();
    let cq_a = fabric.create_cq(a);
    let cq_b = fabric.create_cq(b);
    let ud = fabric.create_qp(a, cq_a, cq_a, QpAttrs::ud());
    let rc = fabric.create_qp(b, cq_b, cq_b, QpAttrs::default());
    let sim = Sim::new(fabric, SimConfig::default());
    sim.with_world(|ctx| {
        let err = post_send_ud(ctx, ud, rc, SendWr::inline_send(1, vec![0])).unwrap_err();
        assert_eq!(err, VerbsError::InvalidQpState);
    });
}

#[test]
fn one_ud_qp_receives_from_many_senders() {
    // The fan-in property that makes UD attractive for scalability
    // (paper §8): one QP, N peers, no per-peer connection state.
    let mut fabric = Fabric::new(FabricParams::mt23108());
    let hub_node = fabric.add_node();
    let hub_cq = fabric.create_cq(hub_node);
    let hub = fabric.create_qp(hub_node, hub_cq, hub_cq, QpAttrs::ud());
    let hub_mr = fabric.register(hub_node, 1 << 16, Access::LOCAL_WRITE);
    for i in 0..16 {
        fabric
            .post_recv(
                hub,
                RecvWr {
                    wr_id: i,
                    mr: hub_mr,
                    offset: i as usize * 2048,
                    len: 2048,
                },
            )
            .unwrap();
    }
    let mut senders = Vec::new();
    for _ in 0..4 {
        let n = fabric.add_node();
        let cq = fabric.create_cq(n);
        senders.push(fabric.create_qp(n, cq, cq, QpAttrs::ud()));
    }
    let mut sim = Sim::new(fabric, SimConfig::default());
    sim.with_world(|ctx| {
        for (i, &qp) in senders.iter().enumerate() {
            post_send_ud(
                ctx,
                qp,
                hub,
                SendWr::inline_send(i as u64, vec![i as u8 + 1; 64]),
            )
            .unwrap();
        }
    });
    sim.run().unwrap();
    let mut f = sim.into_world();
    let recvs = f.poll_cq(hub_cq, 16);
    assert_eq!(recvs.len(), 4);
    assert!(recvs.iter().all(|c| c.is_success()));
}
