//! Integration tests for the fault-injection plane and the transport's
//! recovery machinery: ACK-timeout retransmission, retry exhaustion,
//! duplicate suppression, READ-response replay, and the guarantee that an
//! inert plan perturbs nothing.

use ibfabric::*;
use ibsim::{Sim, SimConfig, SimDuration, SimTime};

/// Two connected nodes with a fault plan installed before the clock
/// starts; the plan builder gets the node ids so tests can scope flaps
/// to a single link direction.
struct FaultPair {
    sim: Sim<Fabric>,
    cq_a: CqId,
    cq_b: CqId,
    qp_a: QpId,
    qp_b: QpId,
    mr_a: MrId,
    mr_b: MrId,
}

fn fault_pair(
    params: FabricParams,
    attrs: QpAttrs,
    preposted_b: usize,
    plan: impl FnOnce(NodeId, NodeId) -> Option<FaultPlan>,
) -> FaultPair {
    let mut fabric = Fabric::new(params);
    let node_a = fabric.add_node();
    let node_b = fabric.add_node();
    if let Some(p) = plan(node_a, node_b) {
        fabric.set_fault_plan(p);
    }
    let cq_a = fabric.create_cq(node_a);
    let cq_b = fabric.create_cq(node_b);
    let qp_a = fabric.create_qp(node_a, cq_a, cq_a, attrs);
    let qp_b = fabric.create_qp(node_b, cq_b, cq_b, attrs);
    let mr_a = fabric.register(node_a, 1 << 20, Access::FULL);
    let mr_b = fabric.register(node_b, 1 << 20, Access::FULL);
    for i in 0..preposted_b {
        fabric
            .post_recv(
                qp_b,
                RecvWr {
                    wr_id: 1000 + i as u64,
                    mr: mr_b,
                    offset: i * 4096,
                    len: 4096,
                },
            )
            .unwrap();
    }
    let sim = Sim::new(fabric, SimConfig::default());
    sim.with_world(|ctx| connect(ctx, qp_a, qp_b));
    FaultPair {
        sim,
        cq_a,
        cq_b,
        qp_a,
        qp_b,
        mr_a,
        mr_b,
    }
}

/// An inert plan (all rates zero, no windows) must not change virtual
/// time by a nanosecond: the retry timers it would arm are gated on
/// `enabled()`, which is what keeps every golden byte-identical.
#[test]
fn inert_plan_leaves_timing_untouched() {
    let run = |with_plan: bool| -> (SimTime, usize) {
        let mut p = fault_pair(FabricParams::mt23108(), QpAttrs::default(), 8, |_, _| {
            with_plan.then(|| FaultPlan::new(99))
        });
        p.sim.with_world(|ctx| {
            for i in 0..8u64 {
                post_send(ctx, p.qp_a, SendWr::inline_send(i, vec![i as u8; 512])).unwrap();
            }
        });
        let report = p.sim.run().unwrap();
        let mut f = p.sim.into_world();
        let recvs = f.poll_cq(p.cq_b, 64).len();
        (report.end_time, recvs)
    };
    let (t_clean, n_clean) = run(false);
    let (t_inert, n_inert) = run(true);
    assert_eq!(n_clean, 8);
    assert_eq!(t_clean, t_inert, "inert fault plan changed virtual time");
    assert_eq!(n_clean, n_inert);
}

/// A message lost inside a link-flap window is recovered by the ACK
/// timeout: the requester retransmits after the timer fires and the
/// payload lands once the window closes.
#[test]
fn flap_window_loss_recovers_via_ack_timeout() {
    let mut p = fault_pair(FabricParams::mt23108(), QpAttrs::default(), 4, |a, b| {
        Some(FaultPlan::new(7).with_flap(LinkFlap {
            scope: FlapScope::Link { src: a, dst: b },
            from: SimTime::ZERO,
            until: SimTime::from_nanos(100_000),
        }))
    });
    p.sim.with_world(|ctx| {
        post_send(ctx, p.qp_a, SendWr::inline_send(1, vec![0xAB; 900])).unwrap();
    });
    p.sim.run().unwrap();
    let mut f = p.sim.into_world();

    let recvs = f.poll_cq(p.cq_b, 16);
    assert_eq!(recvs.len(), 1, "payload never recovered");
    assert!(recvs[0].is_success());
    assert_eq!(&f.mr_bytes(p.mr_b)[..900], &[0xAB; 900][..]);
    let sends = f.poll_cq(p.cq_a, 16);
    assert_eq!(sends.len(), 1);
    assert!(sends[0].is_success());

    assert!(f.stats.flap_drops.get() >= 1, "flap never dropped anything");
    assert!(f.qp(p.qp_a).stats.ack_timeouts.get() >= 1);
    assert!(f.qp(p.qp_a).stats.retransmissions.get() >= 1);
    assert_eq!(f.qp(p.qp_a).state(), QpState::ReadyToSend);
}

/// With every packet dropped and a finite `retry_cnt`, the requester
/// burns its budget and fails the QP with `TransportRetryExceeded`; the
/// peer QP follows into the error state and flushes its receives.
#[test]
fn retry_exhaustion_fails_both_qps_with_typed_status() {
    let attrs = QpAttrs {
        retry_cnt: Some(2),
        ..QpAttrs::default()
    };
    let mut p = fault_pair(FabricParams::mt23108(), attrs, 2, |_, _| {
        Some(FaultPlan::new(11).with_drop(1.0))
    });
    p.sim.with_world(|ctx| {
        post_send(ctx, p.qp_a, SendWr::inline_send(1, vec![1u8; 256])).unwrap();
    });
    p.sim.run().unwrap();
    let mut f = p.sim.into_world();

    let sends = f.poll_cq(p.cq_a, 16);
    assert_eq!(sends.len(), 1);
    assert_eq!(sends[0].wr_id, 1);
    assert_eq!(sends[0].status, CqeStatus::TransportRetryExceeded);
    assert_eq!(
        sends[0].status.to_string(),
        "transport retry exceeded (wc status 12)"
    );
    // Budget 2 => original + 2 retries, failing on the third timeout.
    assert_eq!(f.qp(p.qp_a).stats.ack_timeouts.get(), 3);
    assert_eq!(f.qp(p.qp_a).stats.retransmissions.get(), 2);
    assert_eq!(f.qp(p.qp_a).state(), QpState::Error);
    assert_eq!(f.qp(p.qp_b).state(), QpState::Error);

    // The peer's posted receives flushed.
    let recvs = f.poll_cq(p.cq_b, 16);
    assert_eq!(recvs.len(), 2);
    for c in &recvs {
        assert_eq!(c.status, CqeStatus::WorkRequestFlushed);
    }
}

/// An ACK delayed past the ACK timeout makes the requester retransmit a
/// message the responder already delivered: the duplicate must be
/// re-ACKed without consuming a second receive WQE.
#[test]
fn duplicate_delivery_is_suppressed() {
    let mut p = fault_pair(FabricParams::mt23108(), QpAttrs::default(), 4, |_, _| {
        Some(FaultPlan::new(3).with_ack_delay(1.0, SimDuration::micros(400)))
    });
    p.sim.with_world(|ctx| {
        post_send(ctx, p.qp_a, SendWr::inline_send(5, vec![9u8; 128])).unwrap();
    });
    p.sim.run().unwrap();
    let mut f = p.sim.into_world();

    let recvs = f.poll_cq(p.cq_b, 16);
    assert_eq!(recvs.len(), 1, "duplicate consumed a second receive WQE");
    assert!(recvs[0].is_success());
    let sends = f.poll_cq(p.cq_a, 16);
    assert_eq!(sends.len(), 1);
    assert!(sends[0].is_success());

    assert!(f.stats.acks_delayed.get() >= 1);
    assert!(f.stats.dup_suppressed.get() >= 1);
    assert!(f.qp(p.qp_a).stats.ack_timeouts.get() >= 1);
    assert_eq!(f.stats.msgs_delivered.get(), 1, "duplicate double-counted");
}

/// A lost RDMA READ response cannot be recovered by a plain re-ACK: the
/// duplicate read request must replay the response data.
#[test]
fn lost_read_response_is_replayed() {
    let mut p = fault_pair(FabricParams::mt23108(), QpAttrs::default(), 0, |a, b| {
        // Flap only the response direction (b -> a).
        Some(FaultPlan::new(5).with_flap(LinkFlap {
            scope: FlapScope::Link { src: b, dst: a },
            from: SimTime::ZERO,
            until: SimTime::from_nanos(120_000),
        }))
    });
    p.sim.with_world(|ctx| {
        for (i, byte) in ctx.world.mr_bytes_mut(p.mr_b)[..2000]
            .iter_mut()
            .enumerate()
        {
            *byte = (i % 251) as u8;
        }
        post_send(
            ctx,
            p.qp_a,
            SendWr::rdma_read(77, p.mr_b, 0, p.mr_a, 0, 2000),
        )
        .unwrap();
    });
    p.sim.run().unwrap();
    let mut f = p.sim.into_world();

    let cqes = f.poll_cq(p.cq_a, 16);
    assert_eq!(cqes.len(), 1);
    assert_eq!(cqes[0].opcode, CqeOpcode::RdmaReadComplete);
    assert!(cqes[0].is_success());
    assert_eq!(cqes[0].byte_len, 2000);
    for (i, byte) in f.mr_bytes(p.mr_a)[..2000].iter().enumerate() {
        assert_eq!(*byte, (i % 251) as u8, "read data corrupted at {i}");
    }
    assert!(
        f.stats.read_replays.get() >= 1,
        "response was never replayed"
    );
    assert!(f.qp(p.qp_a).stats.ack_timeouts.get() >= 1);
}

/// Random per-link drop with infinite retry budgets: every message still
/// gets through (possibly late), nothing is double-delivered, and the
/// recovery counters light up. Exercises drop + corruption + duplicate
/// suppression together under the seeded RNG.
#[test]
fn lossy_link_delivers_everything_exactly_once() {
    let attrs = QpAttrs {
        retry_cnt: None, // retry forever
        ..QpAttrs::default()
    };
    let n = 24usize;
    let mut p = fault_pair(FabricParams::mt23108(), attrs, n, |_, _| {
        Some(FaultPlan::new(0xD1CE).with_drop(0.12).with_corrupt(0.05))
    });
    p.sim.with_world(|ctx| {
        for i in 0..n as u64 {
            post_send(
                ctx,
                p.qp_a,
                SendWr::inline_send(i, vec![i as u8; 200 + i as usize]),
            )
            .unwrap();
        }
    });
    p.sim.run().unwrap();
    let mut f = p.sim.into_world();

    let recvs = f.poll_cq(p.cq_b, 64);
    assert_eq!(recvs.len(), n, "lost or duplicated deliveries");
    for (i, c) in recvs.iter().enumerate() {
        assert!(c.is_success());
        assert_eq!(c.wr_id, 1000 + i as u64, "delivery order violated");
        assert_eq!(c.byte_len, 200 + i);
    }
    let sends = f.poll_cq(p.cq_a, 64);
    assert_eq!(sends.len(), n);
    assert!(sends.iter().all(Cqe::is_success));
    assert_eq!(f.stats.msgs_delivered.get(), n as u64);
    assert!(f.stats.msgs_dropped.get() + f.stats.msgs_corrupted.get() >= 1);
    assert!(f.qp(p.qp_a).stats.retransmissions.get() >= 1);
    assert_eq!(f.qp(p.qp_a).state(), QpState::ReadyToSend);
}
