//! Benches of the fabric simulator itself (in-repo harness): wall-clock
//! cost of the message patterns the MPI layer generates. Results land in
//! `bench_results/transport.json`.

use ibfabric::*;
use ibsim::{Sim, SimConfig};
use testutil::Harness;

fn setup(preposted: usize) -> (Fabric, CqId, CqId, QpId, QpId, MrId) {
    let mut fabric = Fabric::new(FabricParams::mt23108());
    let a = fabric.add_node();
    let b = fabric.add_node();
    let cq_a = fabric.create_cq(a);
    let cq_b = fabric.create_cq(b);
    let qp_a = fabric.create_qp(a, cq_a, cq_a, QpAttrs::default());
    let qp_b = fabric.create_qp(b, cq_b, cq_b, QpAttrs::default());
    let mr_b = fabric.register(b, 8 << 20, Access::FULL);
    for i in 0..preposted {
        fabric
            .post_recv(
                qp_b,
                RecvWr {
                    wr_id: i as u64,
                    mr: mr_b,
                    offset: (i % 256) * 4096,
                    len: 4096,
                },
            )
            .unwrap();
    }
    (fabric, cq_a, cq_b, qp_a, qp_b, mr_b)
}

fn main() {
    let mut h = Harness::new("transport");

    // 256 small sends end-to-end (the eager-protocol hot path).
    h.bench("fabric_256_small_sends", || {
        let (fabric, _cq_a, cq_b, qp_a, qp_b, _mr_b) = setup(256);
        let mut sim = Sim::new(fabric, SimConfig::default());
        sim.with_world(|ctx| {
            connect(ctx, qp_a, qp_b);
            for i in 0..256u64 {
                post_send(ctx, qp_a, SendWr::inline_send(i, vec![0u8; 64])).unwrap();
            }
        });
        sim.run().unwrap();
        let mut f = sim.into_world();
        assert_eq!(f.poll_cq(cq_b, 512).len(), 256);
    });

    // One 4 MiB RDMA write (the rendezvous data path, ~2 k packets).
    h.bench("fabric_4mib_rdma_write", || {
        let (fabric, cq_a, _cq_b, qp_a, qp_b, mr_b) = setup(0);
        let mut sim = Sim::new(fabric, SimConfig::default());
        sim.with_world(|ctx| {
            connect(ctx, qp_a, qp_b);
            post_send(
                ctx,
                qp_a,
                SendWr::rdma_write(1, vec![7u8; 4 << 20], mr_b, 0),
            )
            .unwrap();
        });
        sim.run().unwrap();
        let mut f = sim.into_world();
        assert_eq!(f.poll_cq(cq_a, 4).len(), 1);
    });

    // RNR retry storm (no receives posted until late).
    h.bench("fabric_rnr_retry_storm", || {
        let (fabric, _cq_a, cq_b, qp_a, qp_b, mr_b) = setup(0);
        let mut sim = Sim::new(fabric, SimConfig::default());
        sim.with_world(|ctx| {
            connect(ctx, qp_a, qp_b);
            for i in 0..8u64 {
                post_send(ctx, qp_a, SendWr::inline_send(i, vec![0u8; 32])).unwrap();
            }
            ctx.schedule_at(ibsim::SimTime::from_nanos(2_000_000), move |c| {
                for i in 0..8usize {
                    c.world
                        .post_recv(
                            qp_b,
                            RecvWr {
                                wr_id: i as u64,
                                mr: mr_b,
                                offset: i * 4096,
                                len: 4096,
                            },
                        )
                        .unwrap();
                }
            });
        });
        sim.run().unwrap();
        let mut f = sim.into_world();
        assert_eq!(f.poll_cq(cq_b, 16).len(), 8);
    });

    h.finish();
}
