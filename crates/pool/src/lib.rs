//! `ibpool` — a scoped worker-pool batch runner for the experiment battery.
//!
//! The reproduction pipeline is a bag of *independent, deterministic*
//! simulations (every figure row is its own [`Sim`](../ibsim) world), so the
//! battery parallelizes trivially: run the jobs on a few OS threads and
//! reassemble the results **in submission order**. Because each job is a
//! closed virtual-time computation, the output bytes are identical at any
//! worker count — parallelism changes only wall-clock time.
//!
//! The pool is hermetic (no rayon/crossbeam): plain `std::thread::scope`
//! workers pulling job indices off an atomic counter. Jobs may borrow from
//! the caller's stack (the scope outlives them), results come back in the
//! order the jobs were submitted, and the first panicking job (lowest
//! submission index among observed panics) is re-raised on the caller with
//! its job label attached.
//!
//! Worker count: `IBFLOW_JOBS=<n>` forces exactly `n` workers (an explicit
//! request may oversubscribe the host); when unset or unparsable the pool
//! uses [`std::thread::available_parallelism`]. A batch never spawns more
//! workers than it has jobs, and a single-worker batch runs inline on the
//! caller's thread (no spawn at all).

#![warn(missing_docs)]
#![deny(unsafe_code)]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Environment variable overriding the worker count.
pub const JOBS_ENV: &str = "IBFLOW_JOBS";

/// One labelled unit of work; build with [`job`].
pub struct Job<'scope, T> {
    label: String,
    run: Box<dyn FnOnce() -> T + Send + 'scope>,
}

/// Wraps a closure and a diagnostic label into a [`Job`]. The label is
/// reported if the job panics (`pool job '<label>' panicked: ...`).
pub fn job<'scope, T>(
    label: impl Into<String>,
    f: impl FnOnce() -> T + Send + 'scope,
) -> Job<'scope, T> {
    Job {
        label: label.into(),
        run: Box::new(f),
    }
}

/// The worker count [`run_batch`] will use: `IBFLOW_JOBS` if set to a
/// positive integer, otherwise the host's available parallelism.
pub fn worker_count() -> usize {
    match std::env::var(JOBS_ENV) {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => default_workers(),
        },
        Err(_) => default_workers(),
    }
}

fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs `jobs` across [`worker_count`] threads; see [`run_batch_with`].
pub fn run_batch<T: Send>(jobs: Vec<Job<'_, T>>) -> Vec<T> {
    let workers = worker_count();
    run_batch_with(jobs, workers)
}

/// Runs `jobs` across at most `workers` threads and returns the results in
/// submission-index order.
///
/// If any job panics, the batch stops handing out new jobs, already-running
/// jobs finish, and the panic of the lowest-indexed failed job is re-raised
/// here with its label. With `workers <= 1` (or a single job) everything
/// runs inline on the caller's thread in submission order.
pub fn run_batch_with<T: Send>(jobs: Vec<Job<'_, T>>, workers: usize) -> Vec<T> {
    let n = jobs.len();
    let workers = workers.min(n);
    if workers <= 1 {
        return jobs
            .into_iter()
            .map(|j| {
                let label = j.label;
                match catch_unwind(AssertUnwindSafe(j.run)) {
                    Ok(v) => v,
                    Err(payload) => panic!("pool job '{label}' panicked: {}", message(&*payload)),
                }
            })
            .collect();
    }

    // Each slot is claimed by exactly one worker (the atomic counter hands
    // out each index once), so the per-slot mutexes are never contended;
    // they exist only to satisfy the borrow checker without `unsafe`.
    let pending: Vec<Mutex<Option<Job<'_, T>>>> =
        jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let failed = AtomicBool::new(false);
    // Lowest-submission-index panic wins, so the re-raised error does not
    // depend on worker interleaving when several jobs fail.
    let first_panic: Mutex<Option<(usize, String, String)>> = Mutex::new(None);

    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n || failed.load(Ordering::Relaxed) {
                    break;
                }
                let Job { label, run } = pending[i]
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .take()
                    .expect("job slot claimed twice");
                match catch_unwind(AssertUnwindSafe(run)) {
                    Ok(v) => {
                        *results[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(v);
                    }
                    Err(payload) => {
                        failed.store(true, Ordering::Relaxed);
                        let mut slot = first_panic.lock().unwrap_or_else(|e| e.into_inner());
                        if slot.as_ref().is_none_or(|(j, _, _)| i < *j) {
                            *slot = Some((i, label, message(&*payload)));
                        }
                    }
                }
            });
        }
    });

    if let Some((_, label, msg)) = first_panic.into_inner().unwrap_or_else(|e| e.into_inner()) {
        panic!("pool job '{label}' panicked: {msg}");
    }
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .unwrap_or_else(|e| e.into_inner())
                .expect("job finished without result or panic")
        })
        .collect()
}

fn message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn preserves_submission_order() {
        // Later-submitted jobs finish first (reverse-staggered sleeps), but
        // results still come back in submission order.
        let jobs: Vec<Job<'_, usize>> = (0..16)
            .map(|i| {
                job(format!("j{i}"), move || {
                    std::thread::sleep(Duration::from_millis((16 - i) as u64));
                    i
                })
            })
            .collect();
        let out = run_batch_with(jobs, 8);
        assert_eq!(out, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn borrows_from_caller_stack() {
        let base = [10usize, 20, 30];
        let jobs: Vec<Job<'_, usize>> = base.iter().map(|v| job("borrow", move || v + 1)).collect();
        assert_eq!(run_batch_with(jobs, 2), vec![11, 21, 31]);
    }

    #[test]
    fn jobs_eq_one_runs_inline() {
        let here = std::thread::current().id();
        let jobs = vec![
            job("a", move || std::thread::current().id() == here),
            job("b", move || std::thread::current().id() == here),
        ];
        assert_eq!(run_batch_with(jobs, 1), vec![true, true]);
    }

    #[test]
    fn empty_batch_is_fine() {
        let out: Vec<u8> = run_batch_with(Vec::new(), 4);
        assert!(out.is_empty());
    }

    #[test]
    fn panic_carries_job_label_parallel() {
        let jobs = vec![
            job("fine", || 1u32),
            job("boom", || panic!("intentional pool test panic")),
            job("also-fine", || 3u32),
        ];
        let err = catch_unwind(AssertUnwindSafe(|| run_batch_with(jobs, 3))).unwrap_err();
        let msg = message(&*err);
        assert!(msg.contains("pool job 'boom' panicked"), "{msg}");
        assert!(msg.contains("intentional pool test panic"), "{msg}");
    }

    #[test]
    fn panic_carries_job_label_inline() {
        let jobs = vec![job("solo", || -> u32 { panic!("inline failure") })];
        let err = catch_unwind(AssertUnwindSafe(|| run_batch_with(jobs, 1))).unwrap_err();
        let msg = message(&*err);
        assert!(msg.contains("pool job 'solo' panicked"), "{msg}");
        assert!(msg.contains("inline failure"), "{msg}");
    }

    #[test]
    fn lowest_index_panic_wins() {
        // Both jobs panic; job 0 sleeps so job 1's panic lands first in
        // wall time, yet the reported label must still be job 0's.
        let jobs: Vec<Job<'_, ()>> = vec![
            job("first", || {
                std::thread::sleep(Duration::from_millis(30));
                panic!("first boom");
            }),
            job("second", || panic!("second boom")),
        ];
        let err = catch_unwind(AssertUnwindSafe(|| run_batch_with(jobs, 2))).unwrap_err();
        let msg = message(&*err);
        assert!(msg.contains("'first'"), "{msg}");
    }

    #[test]
    fn worker_count_floor_is_one() {
        let jobs = vec![job("z", || 9u8)];
        assert_eq!(run_batch_with(jobs, 0), vec![9]);
    }
}
