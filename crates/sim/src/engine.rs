//! The simulation kernel: event queue, scheduling context, and the
//! poll-loop executor that steps coroutine processes.
//!
//! Execution is single-threaded: [`Sim::run`] drains the `(time, seq)`
//! event queue on the caller's thread, running `Call` closures inline and
//! resuming processes by polling their state machines directly. A process
//! is a stackless coroutine (an `async` body compiled to a resumable state
//! machine by rustc), so "handing the baton" to any process — itself or a
//! peer — is one heap pop plus one `Future::poll` call: no channels, no
//! context switches, no OS threads. Virtual-time order is fully determined
//! by the `(time, seq)` event queue, so result bytes cannot depend on how
//! the poll loop interleaves the coroutines.

use crate::error::{DeadlockInfo, SimError};
use crate::event::{Entry, EventKind};
use crate::process::{ProcCtx, ProcId, ProcSlot, ProcStatus};
use crate::time::{SimDuration, SimTime};
use crate::waker::Waker;
use std::cell::{RefCell, RefMut};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::future::Future;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll};

/// Limits and knobs for a simulation run.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Abort the run after this many processed events (livelock guard).
    pub max_events: u64,
    /// Abort the run if virtual time passes this horizon.
    pub max_time: SimTime,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            max_events: u64::MAX,
            max_time: SimTime::MAX,
        }
    }
}

/// Scheduler state shared by the poll loop, event closures, and processes.
pub(crate) struct Sched<W> {
    pub(crate) now: SimTime,
    seq: u64,
    queue: BinaryHeap<Reverse<Entry<W>>>,
    pub(crate) procs: Vec<ProcSlot>,
    events_processed: u64,
}

impl<W> Sched<W> {
    fn push(&mut self, time: SimTime, kind: EventKind<W>) {
        debug_assert!(time >= self.now, "event scheduled in the past");
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(Entry { time, seq, kind }));
    }

    /// Pops and runs ready `Call` events inline, stopping at the first
    /// event that requires the executor: a process resume, an empty queue,
    /// or a configured limit.
    fn drain_calls(&mut self, world: &mut W, config: &SimConfig) -> KernelStep {
        loop {
            match self.queue.pop() {
                None => return KernelStep::QueueEmpty,
                Some(Reverse(entry)) => {
                    // Limits are checked *before* counting the event, so an
                    // `EventLimitExceeded` reports exactly the configured
                    // limit rather than limit + 1.
                    if self.events_processed >= config.max_events {
                        return KernelStep::EventLimit(self.events_processed, self.now);
                    }
                    if entry.time > config.max_time {
                        return KernelStep::TimeLimit(entry.time);
                    }
                    self.events_processed += 1;
                    self.now = entry.time;
                    match entry.kind {
                        EventKind::Call(f) => f(&mut Ctx { world, sched: self }),
                        EventKind::Resume(p) => {
                            let slot = &mut self.procs[p.0];
                            slot.resume_pending = false;
                            if matches!(slot.status, ProcStatus::Done) {
                                continue; // stale resume for a finished process
                            }
                            slot.status = ProcStatus::Running;
                            return KernelStep::Handoff(p);
                        }
                    }
                }
            }
        }
    }

    /// Schedule a `Resume` for `proc` at `time` unless one is already
    /// pending or the process is done.
    pub(crate) fn wake_at(&mut self, proc_id: ProcId, time: SimTime) {
        let slot = &mut self.procs[proc_id.0];
        if slot.resume_pending || matches!(slot.status, ProcStatus::Done) {
            return;
        }
        slot.resume_pending = true;
        self.push(time, EventKind::Resume(proc_id));
    }

    /// Clears any pending-resume marker for `proc` (used by
    /// [`ProcCtx::advance`], which must schedule its own wake even if a
    /// waker fired during the process's current slice).
    pub(crate) fn clear_resume_pending(&mut self, proc_id: ProcId) {
        self.procs[proc_id.0].resume_pending = false;
    }
}

/// What [`Sched::drain_calls`] stopped on; everything except `Handoff`
/// is a terminal condition the executor resolves into a run result.
enum KernelStep {
    Handoff(ProcId),
    QueueEmpty,
    EventLimit(u64, SimTime),
    TimeLimit(SimTime),
}

/// The full world + scheduler state behind one `RefCell`; borrowed briefly
/// by the poll loop to drain events and by processes inside `with` blocks,
/// never across a coroutine suspension point.
pub(crate) struct State<W> {
    pub(crate) world: W,
    pub(crate) sched: Sched<W>,
}

pub(crate) struct Shared<W> {
    pub(crate) state: RefCell<State<W>>,
    /// Run limits; read-only after construction.
    pub(crate) config: SimConfig,
}

impl<W> Shared<W> {
    pub(crate) fn lock(&self) -> RefMut<'_, State<W>> {
        self.state.borrow_mut()
    }
}

/// Mutable view handed to event closures and to process `with` blocks:
/// the world plus scheduling operations, pinned at the current instant.
pub struct Ctx<'a, W> {
    /// The user world (e.g. the InfiniBand fabric).
    pub world: &'a mut W,
    pub(crate) sched: &'a mut Sched<W>,
}

impl<W> Ctx<'_, W> {
    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.sched.now
    }

    /// Schedule `f` to run against the world at absolute time `time`
    /// (must not be in the past).
    pub fn schedule_at(&mut self, time: SimTime, f: impl FnOnce(&mut Ctx<'_, W>) + 'static) {
        self.sched.push(time, EventKind::Call(Box::new(f)));
    }

    /// Schedule `f` to run `delay` from now.
    pub fn schedule_after(
        &mut self,
        delay: SimDuration,
        f: impl FnOnce(&mut Ctx<'_, W>) + 'static,
    ) {
        let t = self.sched.now + delay;
        self.schedule_at(t, f);
    }

    /// Wake the process behind `waker` at the current instant.
    /// No-op if the process already finished or a wake is pending.
    pub fn wake(&mut self, waker: Waker) {
        let t = self.sched.now;
        self.sched.wake_at(waker.proc_id, t);
    }

    /// Wake the process behind `waker` after `delay` (timer-style wake).
    pub fn wake_after(&mut self, waker: Waker, delay: SimDuration) {
        let t = self.sched.now + delay;
        self.sched.wake_at(waker.proc_id, t);
    }

    /// Drain and wake every waker in `wakers`.
    pub fn wake_all(&mut self, wakers: &mut Vec<Waker>) {
        for w in wakers.drain(..) {
            let t = self.sched.now;
            self.sched.wake_at(w.proc_id, t);
        }
    }
}

/// A report from a completed run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Virtual time when the last event was processed.
    pub end_time: SimTime,
    /// Total events processed by the poll loop.
    pub events_processed: u64,
    /// Number of processes that ran to completion.
    pub procs_finished: usize,
    /// True when [`Sim::run_with_fence`] stopped at a quiesce fence
    /// instead of running every process to completion.
    pub stopped_at_fence: bool,
}

/// The scheduler counters a checkpoint must capture so a resumed run
/// replays the exact `(time, seq)` event order of the original.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimClock {
    /// Virtual time at the fence.
    pub now: SimTime,
    /// Next event sequence number the scheduler would assign.
    pub seq: u64,
    /// Events processed so far.
    pub events_processed: u64,
}

/// What a fence callback tells [`Sim::run_with_fence`] to do once the
/// world has drained to a quiesce fence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FenceAction {
    /// Release the fence: wake every parked process at the fence instant
    /// and keep running.
    Continue,
    /// Stop the run at the fence (checkpoint-and-exit). Parked coroutines
    /// are dropped with the simulation.
    Stop,
}

/// A process coroutine: the pinned state machine the executor polls.
type Task = Pin<Box<dyn Future<Output = ()>>>;

/// A deterministic discrete-event simulation over a world `W`.
///
/// See the [crate docs](crate) for the execution model.
pub struct Sim<W: 'static> {
    shared: Rc<Shared<W>>,
    /// One slot per process, indexed by `ProcId`. `None` while the task is
    /// checked out for polling or after it completed/panicked.
    tasks: Vec<Option<Task>>,
}

impl<W: 'static> Sim<W> {
    /// Creates a simulation owning `world`.
    pub fn new(world: W, config: SimConfig) -> Self {
        Sim {
            shared: Rc::new(Shared {
                state: RefCell::new(State {
                    world,
                    sched: Sched {
                        now: SimTime::ZERO,
                        seq: 0,
                        queue: BinaryHeap::new(),
                        procs: Vec::new(),
                        events_processed: 0,
                    },
                }),
                config,
            }),
            tasks: Vec::new(),
        }
    }

    /// Rebuilds a simulation from a checkpointed world and the scheduler
    /// clock captured at the fence.
    ///
    /// The event queue starts empty: at a quiesce fence every in-flight
    /// event has drained, so the only state the scheduler carries across
    /// a snapshot is the `(now, seq, events_processed)` triple. Processes
    /// respawned afterwards consume sequence numbers starting at
    /// `clock.seq` — exactly the numbers the fence release would have
    /// assigned in the uninterrupted run, which is what makes a restored
    /// run byte-identical to one that never stopped.
    pub fn resume(world: W, config: SimConfig, clock: SimClock) -> Self {
        Sim {
            shared: Rc::new(Shared {
                state: RefCell::new(State {
                    world,
                    sched: Sched {
                        now: clock.now,
                        seq: clock.seq,
                        queue: BinaryHeap::new(),
                        procs: Vec::new(),
                        events_processed: clock.events_processed,
                    },
                }),
                config,
            }),
            tasks: Vec::new(),
        }
    }

    /// Runs `f` against the world before (or between) runs, e.g. for setup.
    pub fn with_world<R>(&self, f: impl FnOnce(&mut Ctx<'_, W>) -> R) -> R {
        let mut st = self.shared.lock();
        let State { world, sched } = &mut *st;
        f(&mut Ctx { world, sched })
    }

    /// Spawns a simulated process. `body` receives the process handle and
    /// returns its coroutine — an `async move` block whose suspension
    /// points ([`ProcCtx::park`], [`ProcCtx::advance`]) are where the
    /// executor interleaves it with other processes. It starts at virtual
    /// time zero (or at the instant `run` reaches its first resume).
    pub fn spawn<F, Fut>(&mut self, name: impl Into<String>, body: F) -> ProcId
    where
        F: FnOnce(ProcCtx<W>) -> Fut,
        Fut: Future<Output = ()> + 'static,
    {
        let name = name.into();
        let id = {
            let mut st = self.shared.lock();
            let id = ProcId(st.sched.procs.len());
            st.sched.procs.push(ProcSlot {
                name: name.clone(),
                status: ProcStatus::Parked,
                resume_pending: true,
                park_note: "not yet started",
            });
            let t = st.sched.now;
            st.sched.push(t, EventKind::Resume(id));
            id
        };
        let ctx = ProcCtx::new(id, name, Rc::clone(&self.shared));
        self.tasks.push(Some(Box::pin(body(ctx))));
        debug_assert_eq!(self.tasks.len(), self.shared.lock().sched.procs.len());
        id
    }

    /// Runs the event loop until every process finished and the queue is
    /// empty, or a limit/deadlock/panic stops it. All processes are
    /// stepped on the calling thread.
    pub fn run(&mut self) -> Result<RunReport, SimError> {
        let mut cx = Context::from_waker(std::task::Waker::noop());
        loop {
            let step = {
                let mut st = self.shared.lock();
                let State { world, sched } = &mut *st;
                sched.drain_calls(world, &self.shared.config)
            };
            match step {
                KernelStep::Handoff(p) => {
                    // The borrow is released: polling re-enters the state
                    // through `ProcCtx::with` from inside the coroutine.
                    let mut task = match self.tasks[p.0].take() {
                        Some(t) => t,
                        // A task can only be absent if a previous `run`
                        // errored out mid-poll; treat the stale resume
                        // like one for a finished process.
                        None => continue,
                    };
                    match catch_unwind(AssertUnwindSafe(|| task.as_mut().poll(&mut cx))) {
                        Ok(Poll::Pending) => self.tasks[p.0] = Some(task),
                        Ok(Poll::Ready(())) => {
                            self.shared.lock().sched.procs[p.0].status = ProcStatus::Done;
                        }
                        Err(payload) => {
                            return Err(SimError::ProcPanicked {
                                name: self.proc_name(p),
                                message: panic_message(&*payload),
                            });
                        }
                    }
                }
                KernelStep::QueueEmpty => {
                    let st = self.shared.lock();
                    let parked: Vec<(String, String)> = st
                        .sched
                        .procs
                        .iter()
                        .filter(|p| !matches!(p.status, ProcStatus::Done))
                        .map(|p| (p.name.clone(), p.park_note.to_string()))
                        .collect();
                    if parked.is_empty() {
                        return Ok(RunReport {
                            end_time: st.sched.now,
                            events_processed: st.sched.events_processed,
                            procs_finished: st.sched.procs.len(),
                            stopped_at_fence: false,
                        });
                    }
                    return Err(SimError::Deadlock(DeadlockInfo {
                        at: st.sched.now,
                        parked,
                    }));
                }
                KernelStep::EventLimit(events, at) => {
                    return Err(SimError::EventLimitExceeded { events, at });
                }
                KernelStep::TimeLimit(at) => return Err(SimError::TimeLimitExceeded { at }),
            }
        }
    }

    /// Like [`Sim::run`], but recognises a *quiesce fence*: whenever the
    /// event queue drains and every live process is parked with
    /// `fence_note`, the world is fully quiescent — no packet, timer or
    /// wake is in flight anywhere — and `fence` is invoked against it
    /// with the scheduler clock. [`FenceAction::Continue`] releases the
    /// fence (every process is woken at the fence instant, in process-id
    /// order); [`FenceAction::Stop`] ends the run at the fence.
    ///
    /// A drained queue with a *mix* of fence and non-fence park notes is
    /// still a deadlock: some process is stuck for a reason the fence
    /// protocol does not explain.
    ///
    /// The non-checkpointing hot path is untouched: [`Sim::run`] contains
    /// no fence checks at all, and here the check only runs in the
    /// queue-empty (i.e. end-of-run or fence) state, never per event.
    pub fn run_with_fence(
        &mut self,
        fence_note: &'static str,
        mut fence: impl FnMut(&mut W, SimClock) -> FenceAction,
    ) -> Result<RunReport, SimError> {
        let mut cx = Context::from_waker(std::task::Waker::noop());
        loop {
            let step = {
                let mut st = self.shared.lock();
                let State { world, sched } = &mut *st;
                sched.drain_calls(world, &self.shared.config)
            };
            match step {
                KernelStep::Handoff(p) => {
                    let mut task = match self.tasks[p.0].take() {
                        Some(t) => t,
                        None => continue,
                    };
                    match catch_unwind(AssertUnwindSafe(|| task.as_mut().poll(&mut cx))) {
                        Ok(Poll::Pending) => self.tasks[p.0] = Some(task),
                        Ok(Poll::Ready(())) => {
                            self.shared.lock().sched.procs[p.0].status = ProcStatus::Done;
                        }
                        Err(payload) => {
                            return Err(SimError::ProcPanicked {
                                name: self.proc_name(p),
                                message: panic_message(&*payload),
                            });
                        }
                    }
                }
                KernelStep::QueueEmpty => {
                    let at_fence = {
                        let st = self.shared.lock();
                        let mut live = 0usize;
                        let mut fenced = 0usize;
                        for p in &st.sched.procs {
                            if !matches!(p.status, ProcStatus::Done) {
                                live += 1;
                                if p.park_note == fence_note {
                                    fenced += 1;
                                }
                            }
                        }
                        live > 0 && live == fenced
                    };
                    if at_fence {
                        let procs = self.begin_quiesce();
                        let action = {
                            let mut st = self.shared.lock();
                            let State { world, sched } = &mut *st;
                            let clock = SimClock {
                                now: sched.now,
                                seq: sched.seq,
                                events_processed: sched.events_processed,
                            };
                            fence(world, clock)
                        };
                        match action {
                            FenceAction::Continue => {
                                self.resume_world(procs);
                                continue;
                            }
                            FenceAction::Stop => return Ok(self.abort_quiesce(procs)),
                        }
                    }
                    let st = self.shared.lock();
                    let parked: Vec<(String, String)> = st
                        .sched
                        .procs
                        .iter()
                        .filter(|p| !matches!(p.status, ProcStatus::Done))
                        .map(|p| (p.name.clone(), p.park_note.to_string()))
                        .collect();
                    if parked.is_empty() {
                        return Ok(RunReport {
                            end_time: st.sched.now,
                            events_processed: st.sched.events_processed,
                            procs_finished: st.sched.procs.len(),
                            stopped_at_fence: false,
                        });
                    }
                    return Err(SimError::Deadlock(DeadlockInfo {
                        at: st.sched.now,
                        parked,
                    }));
                }
                KernelStep::EventLimit(events, at) => {
                    return Err(SimError::EventLimitExceeded { events, at });
                }
                KernelStep::TimeLimit(at) => return Err(SimError::TimeLimitExceeded { at }),
            }
        }
    }

    /// Opens a quiesce window at a fence: records every live (parked)
    /// process, in process-id order. The caller *must* close the window
    /// on every path — [`Sim::resume_world`] to release the fence, or
    /// [`Sim::abort_quiesce`] to end the run at it (the `quiesce-pairing`
    /// lint enforces this).
    fn begin_quiesce(&mut self) -> Vec<ProcId> {
        let st = self.shared.lock();
        st.sched
            .procs
            .iter()
            .enumerate()
            .filter(|(_, p)| !matches!(p.status, ProcStatus::Done))
            .map(|(i, p)| {
                debug_assert!(
                    matches!(p.status, ProcStatus::Parked) && !p.resume_pending,
                    "quiesce fence with a runnable process"
                );
                ProcId(i)
            })
            .collect()
    }

    /// Releases a quiesce fence: wakes every recorded process at the
    /// fence instant, in process-id order. The wakes consume consecutive
    /// sequence numbers — the same numbers `spawn` would consume for the
    /// same processes in a restored run, so released and restored worlds
    /// replay identically.
    fn resume_world(&mut self, procs: Vec<ProcId>) {
        let mut st = self.shared.lock();
        let now = st.sched.now;
        for p in procs {
            st.sched.wake_at(p, now);
        }
    }

    /// Ends the run at a quiesce fence (the checkpoint-and-exit path);
    /// the recorded processes stay parked and drop with the simulation.
    fn abort_quiesce(&mut self, procs: Vec<ProcId>) -> RunReport {
        let st = self.shared.lock();
        debug_assert!(!procs.is_empty());
        RunReport {
            end_time: st.sched.now,
            events_processed: st.sched.events_processed,
            procs_finished: st.sched.procs.len() - procs.len(),
            stopped_at_fence: true,
        }
    }

    fn proc_name(&self, p: ProcId) -> String {
        self.shared
            .lock()
            .sched
            .procs
            .get(p.0)
            .map_or_else(|| "<kernel>".to_string(), |slot| slot.name.clone())
    }

    /// Consumes the simulation and returns the world (for post-run
    /// inspection of statistics).
    pub fn into_world(self) -> W {
        // Suspended coroutines hold `Rc` clones of the shared state;
        // dropping them (their destructors run right here, on this thread)
        // releases every outstanding reference.
        drop(self.tasks);
        Rc::try_unwrap(self.shared)
            // simlint: allow(no-panic-in-lib): every process coroutine was just dropped, so the Rc must be unique; a leak here is unrecoverable
            .unwrap_or_else(|_| panic!("outstanding references to simulation state"))
            .state
            .into_inner()
            .world
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sim_finishes_immediately() {
        let mut sim: Sim<()> = Sim::new((), SimConfig::default());
        let report = sim.run().unwrap();
        assert_eq!(report.end_time, SimTime::ZERO);
        assert_eq!(report.procs_finished, 0);
    }

    #[test]
    fn scheduled_events_run_in_order() {
        let mut sim: Sim<Vec<u64>> = Sim::new(Vec::new(), SimConfig::default());
        sim.with_world(|ctx| {
            ctx.schedule_at(SimTime::from_nanos(20), |c| {
                c.world.push(c.now().as_nanos())
            });
            ctx.schedule_at(SimTime::from_nanos(10), |c| {
                c.world.push(c.now().as_nanos());
                // Nested scheduling from inside an event.
                c.schedule_after(SimDuration::nanos(5), |c2| {
                    c2.world.push(c2.now().as_nanos())
                });
            });
        });
        sim.run().unwrap();
        assert_eq!(sim.into_world(), vec![10, 15, 20]);
    }

    #[test]
    fn process_advances_time() {
        let mut sim: Sim<u64> = Sim::new(0, SimConfig::default());
        sim.spawn("p", |mut p| async move {
            p.advance(SimDuration::micros(1)).await;
            p.advance(SimDuration::micros(2)).await;
            p.with(|ctx| *ctx.world = ctx.now().as_nanos());
        });
        let report = sim.run().unwrap();
        assert_eq!(report.end_time.as_nanos(), 3_000);
        assert_eq!(sim.into_world(), 3_000);
    }

    #[test]
    fn two_processes_interleave_deterministically() {
        let mut sim: Sim<Vec<(usize, u64)>> = Sim::new(Vec::new(), SimConfig::default());
        for id in 0..2usize {
            sim.spawn(format!("p{id}"), move |mut p| async move {
                for step in 0..3u64 {
                    p.advance(SimDuration::nanos(10 + id as u64)).await;
                    p.with(|ctx| {
                        let t = ctx.now().as_nanos();
                        ctx.world.push((id, t));
                    });
                    let _ = step;
                }
            });
        }
        sim.run().unwrap();
        let trace = sim.into_world();
        // p0 ticks at 10,20,30; p1 at 11,22,33 — ordered by time.
        assert_eq!(
            trace,
            vec![(0, 10), (1, 11), (0, 20), (1, 22), (0, 30), (1, 33)]
        );
    }

    #[test]
    fn waker_roundtrip() {
        // World holds an optional waker plus a flag; one process parks on the
        // flag, an event sets it and wakes.
        struct W {
            flag: bool,
            waiter: Option<Waker>,
            observed_at: u64,
        }
        let mut sim: Sim<W> = Sim::new(
            W {
                flag: false,
                waiter: None,
                observed_at: 0,
            },
            SimConfig::default(),
        );
        sim.with_world(|ctx| {
            ctx.schedule_at(SimTime::from_nanos(500), |c| {
                c.world.flag = true;
                if let Some(w) = c.world.waiter.take() {
                    c.wake(w);
                }
            });
        });
        sim.spawn("waiter", |mut p| async move {
            let waker = p.waker();
            loop {
                let ready = p.with(|ctx| {
                    if ctx.world.flag {
                        true
                    } else {
                        ctx.world.waiter = Some(waker);
                        false
                    }
                });
                if ready {
                    break;
                }
                p.park("waiting for flag").await;
            }
            p.with(|ctx| ctx.world.observed_at = ctx.now().as_nanos());
        });
        sim.run().unwrap();
        assert_eq!(sim.into_world().observed_at, 500);
    }

    #[test]
    fn deadlock_is_detected_and_reported() {
        let mut sim: Sim<()> = Sim::new((), SimConfig::default());
        sim.spawn("stuck", |mut p| async move {
            p.park("waiting for a message that never comes").await;
        });
        match sim.run() {
            Err(SimError::Deadlock(info)) => {
                assert_eq!(info.parked.len(), 1);
                assert_eq!(info.parked[0].0, "stuck");
                assert!(info.parked[0].1.contains("never comes"));
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn process_panic_is_reported() {
        let mut sim: Sim<()> = Sim::new((), SimConfig::default());
        sim.spawn("bug", |_p| async move { panic!("intentional test panic") });
        match sim.run() {
            Err(SimError::ProcPanicked { name, message }) => {
                assert_eq!(name, "bug");
                assert!(message.contains("intentional"), "{message}");
            }
            other => panic!("expected panic report, got {other:?}"),
        }
    }

    #[test]
    fn event_limit_guards_livelock() {
        let mut sim: Sim<()> = Sim::new(
            (),
            SimConfig {
                max_events: 100,
                ..Default::default()
            },
        );
        // A self-perpetuating timer chain.
        sim.with_world(|ctx| {
            fn tick(c: &mut Ctx<'_, ()>) {
                c.schedule_after(SimDuration::nanos(1), tick);
            }
            ctx.schedule_at(SimTime::ZERO, tick);
        });
        match sim.run() {
            // The limit reports the configured ceiling, not ceiling + 1.
            Err(SimError::EventLimitExceeded { events, .. }) => assert_eq!(events, 100),
            other => panic!("expected event limit, got {other:?}"),
        }
    }

    #[test]
    fn time_limit_guards_runaway_clock() {
        let mut sim: Sim<()> = Sim::new(
            (),
            SimConfig {
                max_time: SimTime::from_nanos(50),
                ..Default::default()
            },
        );
        sim.spawn("slow", |mut p| async move {
            p.advance(SimDuration::nanos(200)).await;
        });
        assert!(matches!(sim.run(), Err(SimError::TimeLimitExceeded { .. })));
    }

    #[test]
    fn spawned_after_run_does_not_hang_into_world() {
        // `into_world` without `run` must drop suspended coroutines cleanly.
        let mut sim: Sim<u32> = Sim::new(7, SimConfig::default());
        sim.spawn("never-ran", |mut p| async move {
            p.advance(SimDuration::nanos(1)).await;
        });
        assert_eq!(sim.into_world(), 7);
    }

    #[test]
    fn into_world_without_run_drops_many_procs_cleanly() {
        // Same as above, but with enough processes that a leaked coroutine
        // would keep an `Rc` alive and fail the unwrap.
        let mut sim: Sim<u32> = Sim::new(3, SimConfig::default());
        for i in 0..8 {
            sim.spawn(format!("idle{i}"), |mut p| async move {
                p.advance(SimDuration::nanos(1)).await;
                p.park("never woken").await;
            });
        }
        assert_eq!(sim.into_world(), 3);
    }

    #[test]
    fn panic_while_holding_baton_mid_handoff_is_reported() {
        // "parked" yields first and the executor resumes "bomb", which
        // panics mid-step. The panic must surface as `ProcPanicked` with
        // the panicking process's name attached.
        let mut sim: Sim<()> = Sim::new((), SimConfig::default());
        sim.spawn(
            "parked",
            |mut p| async move { p.park("waiting forever").await },
        );
        sim.spawn("bomb", |mut p| async move {
            p.advance(SimDuration::nanos(1)).await;
            panic!("boom in direct handoff");
        });
        match sim.run() {
            Err(SimError::ProcPanicked { name, message }) => {
                assert_eq!(name, "bomb");
                assert!(message.contains("boom"), "{message}");
            }
            other => panic!("expected panic report, got {other:?}"),
        }
    }

    #[test]
    fn deadlock_reports_every_parked_process_with_note() {
        // When the *last runnable* process parks and the queue drains, the
        // deadlock report must cover all parked processes with the notes
        // they recorded themselves.
        let mut sim: Sim<()> = Sim::new((), SimConfig::default());
        sim.spawn(
            "alice",
            |mut p| async move { p.park("waiting for bob").await },
        );
        sim.spawn("bob", |mut p| async move {
            p.advance(SimDuration::nanos(5)).await;
            p.park("waiting for alice").await;
        });
        sim.spawn("carol", |mut p| async move {
            p.advance(SimDuration::nanos(9)).await;
            p.park("waiting for the fabric").await;
        });
        match sim.run() {
            Err(SimError::Deadlock(info)) => {
                assert_eq!(info.at, SimTime::from_nanos(9));
                assert_eq!(
                    info.parked,
                    vec![
                        ("alice".to_string(), "waiting for bob".to_string()),
                        ("bob".to_string(), "waiting for alice".to_string()),
                        ("carol".to_string(), "waiting for the fabric".to_string()),
                    ]
                );
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn finishing_process_hands_baton_to_peer() {
        // "short" finishes while "long" still has work: the executor must
        // keep stepping "long" to completion.
        let mut sim: Sim<Vec<&'static str>> = Sim::new(Vec::new(), SimConfig::default());
        sim.spawn("short", |mut p| async move {
            p.advance(SimDuration::nanos(1)).await;
            p.with(|ctx| ctx.world.push("short"));
        });
        sim.spawn("long", |mut p| async move {
            p.advance(SimDuration::nanos(2)).await;
            p.advance(SimDuration::nanos(10)).await;
            p.with(|ctx| ctx.world.push("long"));
        });
        let report = sim.run().unwrap();
        assert_eq!(report.end_time.as_nanos(), 12);
        assert_eq!(report.procs_finished, 2);
        assert_eq!(sim.into_world(), vec!["short", "long"]);
    }

    #[test]
    fn many_processes_complete() {
        let mut sim: Sim<u64> = Sim::new(0, SimConfig::default());
        for i in 0..32u64 {
            sim.spawn(format!("p{i}"), move |mut p| async move {
                p.advance(SimDuration::nanos(i + 1)).await;
                p.with(|ctx| *ctx.world += 1);
            });
        }
        let report = sim.run().unwrap();
        assert_eq!(report.procs_finished, 32);
        assert_eq!(sim.into_world(), 32);
    }

    const FENCE: &str = "ckpt fence";

    /// World for the fence tests: a release epoch the fence callback
    /// bumps, plus an op trace for byte-identity comparisons.
    #[derive(Clone, Default, PartialEq, Debug)]
    struct FenceWorld {
        released: u64,
        trace: Vec<(usize, u64, u64)>, // (proc, round, time)
    }

    fn spawn_fence_procs(sim: &mut Sim<FenceWorld>, start_round: u64) {
        for id in 0..3usize {
            sim.spawn(format!("p{id}"), move |mut p| async move {
                for round in start_round..3 {
                    p.advance(SimDuration::nanos(10 + id as u64 * round)).await;
                    p.with(|c| {
                        let t = c.now().as_nanos();
                        c.world.trace.push((id, round, t));
                    });
                    let epoch = round + 1;
                    while p.with(|c| c.world.released < epoch) {
                        p.park(FENCE).await;
                    }
                }
            });
        }
    }

    #[test]
    fn fence_fires_once_per_epoch_and_releases_the_world() {
        let mut sim: Sim<FenceWorld> = Sim::new(FenceWorld::default(), SimConfig::default());
        spawn_fence_procs(&mut sim, 0);
        let mut fence_clocks = Vec::new();
        let report = sim
            .run_with_fence(FENCE, |w, clock| {
                w.released += 1;
                fence_clocks.push(clock);
                FenceAction::Continue
            })
            .unwrap();
        assert!(!report.stopped_at_fence);
        assert_eq!(report.procs_finished, 3);
        assert_eq!(fence_clocks.len(), 3, "one fence per round");
        let w = sim.into_world();
        assert_eq!(w.trace.len(), 9);
        // Clocks are strictly increasing across fences.
        assert!(fence_clocks.windows(2).all(|p| p[0].now < p[1].now));
    }

    #[test]
    fn fence_stop_ends_the_run_at_the_fence() {
        let mut sim: Sim<FenceWorld> = Sim::new(FenceWorld::default(), SimConfig::default());
        spawn_fence_procs(&mut sim, 0);
        let mut stop_clock = None;
        let report = sim
            .run_with_fence(FENCE, |w, clock| {
                if w.released == 1 {
                    stop_clock = Some(clock);
                    return FenceAction::Stop;
                }
                w.released += 1;
                FenceAction::Continue
            })
            .unwrap();
        assert!(report.stopped_at_fence);
        assert_eq!(report.procs_finished, 0, "everyone is parked at the fence");
        let clock = stop_clock.unwrap();
        assert_eq!(report.end_time, clock.now);
        // The stop fires at the second fence: rounds 0 and 1 ran.
        assert_eq!(sim.into_world().trace.len(), 6);
    }

    #[test]
    fn resumed_run_is_identical_to_uninterrupted_run() {
        // Uninterrupted run: all three rounds with fences released.
        let mut golden: Sim<FenceWorld> = Sim::new(FenceWorld::default(), SimConfig::default());
        spawn_fence_procs(&mut golden, 0);
        let golden_report = golden
            .run_with_fence(FENCE, |w, _| {
                w.released += 1;
                FenceAction::Continue
            })
            .unwrap();
        let golden_world = golden.into_world();

        // Checkpoint run: stop at the second fence (after round 1).
        let mut first: Sim<FenceWorld> = Sim::new(FenceWorld::default(), SimConfig::default());
        spawn_fence_procs(&mut first, 0);
        let mut snap = None;
        first
            .run_with_fence(FENCE, |w, clock| {
                if w.released == 1 {
                    snap = Some((w.clone(), clock));
                    return FenceAction::Stop;
                }
                w.released += 1;
                FenceAction::Continue
            })
            .unwrap();
        let (mut world, clock) = snap.unwrap();

        // Restore: the world resumes exactly where the snapshot was taken;
        // respawned bodies fast-forward past the completed rounds. The
        // release the stopped fence never performed happens on the first
        // fence of the resumed run (same epoch, same instant).
        world.released += 1;
        let mut resumed = Sim::resume(world, SimConfig::default(), clock);
        spawn_fence_procs(&mut resumed, 2);
        let resumed_report = resumed
            .run_with_fence(FENCE, |w, _| {
                w.released += 1;
                FenceAction::Continue
            })
            .unwrap();
        let resumed_world = resumed.into_world();

        assert_eq!(resumed_world.trace, golden_world.trace);
        assert_eq!(resumed_report.end_time, golden_report.end_time);
        assert_eq!(
            resumed_report.events_processed,
            golden_report.events_processed
        );
    }

    #[test]
    fn mixed_park_notes_still_deadlock_under_a_fence_run() {
        let mut sim: Sim<()> = Sim::new((), SimConfig::default());
        sim.spawn("fenced", |mut p| async move { p.park(FENCE).await });
        sim.spawn("stuck", |mut p| async move {
            p.park("waiting for a message that never comes").await
        });
        match sim.run_with_fence(FENCE, |_, _| FenceAction::Continue) {
            Err(SimError::Deadlock(info)) => assert_eq!(info.parked.len(), 2),
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn fence_run_without_fences_matches_plain_run() {
        let mut sim: Sim<u64> = Sim::new(0, SimConfig::default());
        sim.spawn("p", |mut p| async move {
            p.advance(SimDuration::micros(1)).await;
            p.with(|ctx| *ctx.world = ctx.now().as_nanos());
        });
        let report = sim
            .run_with_fence(FENCE, |_, _| FenceAction::Continue)
            .unwrap();
        assert!(!report.stopped_at_fence);
        assert_eq!(report.end_time.as_nanos(), 1_000);
        assert_eq!(sim.into_world(), 1_000);
    }

    #[test]
    fn hundreds_of_ranks_on_one_thread() {
        // The point of the coroutine runtime: a wide world needs no OS
        // threads at all. Every process records the thread it ran on; all
        // must equal the thread driving `run`.
        let runner = std::thread::current().id();
        let mut sim: Sim<(u64, bool)> = Sim::new((0, true), SimConfig::default());
        for i in 0..256u64 {
            sim.spawn(format!("p{i}"), move |mut p| async move {
                p.advance(SimDuration::nanos(i % 7 + 1)).await;
                let same = std::thread::current().id() == runner;
                p.with(|ctx| {
                    ctx.world.0 += 1;
                    ctx.world.1 &= same;
                });
            });
        }
        let report = sim.run().unwrap();
        assert_eq!(report.procs_finished, 256);
        let (count, all_on_runner) = sim.into_world();
        assert_eq!(count, 256);
        assert!(all_on_runner, "a coroutine ran off the executor thread");
    }
}
