//! The simulation kernel: event queue, scheduling context, baton routing.
//!
//! Execution follows a *direct-handoff* model: whichever thread currently
//! holds the baton (a process parking/advancing/finishing, or the kernel
//! loop bootstrapping the run) takes the state lock, drains ready `Call`
//! events, and routes the next `Resume` itself — back to itself (the
//! self-resume fast path: no channel operations, no context switch), to a
//! peer process (one direct channel send), or to the kernel thread, which
//! is woken only for terminal conditions (queue empty, limits, panics) and
//! retains sole responsibility for deadlock reporting, abort fan-out, and
//! joins. Virtual-time order is fully determined by the `(time, seq)` event
//! queue, so result bytes cannot depend on which thread drains events.

use crate::error::{DeadlockInfo, SimError};
use crate::event::{Entry, EventKind};
use crate::process::{spawn_proc, KernelMsg, ProcCtx, ProcId, ProcSlot, ProcStatus, ResumeSignal};
use crate::time::{SimDuration, SimTime};
use crate::waker::Waker;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;

/// Limits and knobs for a simulation run.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Abort the run after this many processed events (livelock guard).
    pub max_events: u64,
    /// Abort the run if virtual time passes this horizon.
    pub max_time: SimTime,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            max_events: u64::MAX,
            max_time: SimTime::MAX,
        }
    }
}

/// Scheduler state shared by the kernel loop, event closures, and processes.
pub(crate) struct Sched<W> {
    pub(crate) now: SimTime,
    seq: u64,
    queue: BinaryHeap<Reverse<Entry<W>>>,
    pub(crate) procs: Vec<ProcSlot>,
    /// Resume channel per process, indexed by `ProcId`. Lives inside the
    /// state (rather than being owned by the kernel) so the thread that
    /// drains the queue — usually a yielding process — can hand the baton
    /// directly to the next process without involving the kernel thread.
    pub(crate) resume_txs: Vec<Sender<ResumeSignal>>,
    events_processed: u64,
}

impl<W> Sched<W> {
    fn push(&mut self, time: SimTime, kind: EventKind<W>) {
        debug_assert!(time >= self.now, "event scheduled in the past");
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(Entry { time, seq, kind }));
    }

    /// Pops and runs ready `Call` events inline (one lock acquisition for a
    /// whole run of closure events, including every same-timestamp batch),
    /// stopping at the first event that ends this thread's turn: a process
    /// handoff, an empty queue, or a configured limit. Any baton-holding
    /// thread may drain — virtual-time order is fixed by the queue, so the
    /// results cannot depend on who runs the closures.
    fn drain_calls(&mut self, world: &mut W, config: &SimConfig) -> KernelStep {
        loop {
            match self.queue.pop() {
                None => return KernelStep::QueueEmpty,
                Some(Reverse(entry)) => {
                    // Limits are checked *before* counting the event, so an
                    // `EventLimitExceeded` reports exactly the configured
                    // limit rather than limit + 1.
                    if self.events_processed >= config.max_events {
                        return KernelStep::EventLimit(self.events_processed, self.now);
                    }
                    if entry.time > config.max_time {
                        return KernelStep::TimeLimit(entry.time);
                    }
                    self.events_processed += 1;
                    self.now = entry.time;
                    match entry.kind {
                        EventKind::Call(f) => f(&mut Ctx { world, sched: self }),
                        EventKind::Resume(p) => {
                            let slot = &mut self.procs[p.0];
                            slot.resume_pending = false;
                            if matches!(slot.status, ProcStatus::Done) {
                                continue; // stale resume for a finished process
                            }
                            slot.status = ProcStatus::Running;
                            return KernelStep::Handoff(p, entry.time);
                        }
                    }
                }
            }
        }
    }

    /// Schedule a `Resume` for `proc` at `time` unless one is already
    /// pending or the process is done.
    pub(crate) fn wake_at(&mut self, proc_id: ProcId, time: SimTime) {
        let slot = &mut self.procs[proc_id.0];
        if slot.resume_pending || matches!(slot.status, ProcStatus::Done) {
            return;
        }
        slot.resume_pending = true;
        self.push(time, EventKind::Resume(proc_id));
    }

    /// Clears any pending-resume marker for `proc` (used by
    /// `ProcCtx::advance`, which must schedule its own wake even if a waker
    /// fired during the process's current slice).
    pub(crate) fn clear_resume_pending(&mut self, proc_id: ProcId) {
        self.procs[proc_id.0].resume_pending = false;
    }

    /// Drains ready events and routes the baton, all under the state lock
    /// the caller already holds. `me` identifies the calling process
    /// (`None` for the kernel loop) so a resume targeting the caller is
    /// classified as [`Routed::SelfResume`] instead of being sent. A peer
    /// resume is sent *while the lock is held*, which is safe — channel
    /// sends never block and the peer cannot act before receiving the
    /// baton — and keeps routing a single critical section.
    pub(crate) fn route_baton(
        &mut self,
        world: &mut W,
        config: &SimConfig,
        me: Option<ProcId>,
    ) -> Routed {
        match self.drain_calls(world, config) {
            KernelStep::Handoff(p, t) => {
                if me == Some(p) {
                    Routed::SelfResume(t)
                } else if self.resume_txs[p.0].send(ResumeSignal::Go(t)).is_ok() {
                    Routed::BatonSent(p)
                } else {
                    Routed::PeerDied(p)
                }
            }
            KernelStep::QueueEmpty => Routed::Terminal(KernelMsg::QueueEmpty),
            KernelStep::EventLimit(events, at) => {
                Routed::Terminal(KernelMsg::EventLimit { events, at })
            }
            KernelStep::TimeLimit(at) => Routed::Terminal(KernelMsg::TimeLimit { at }),
        }
    }
}

/// What [`Sched::drain_calls`] stopped on; everything except `Handoff`
/// is a terminal condition that only the kernel thread may resolve.
enum KernelStep {
    Handoff(ProcId, SimTime),
    QueueEmpty,
    EventLimit(u64, SimTime),
    TimeLimit(SimTime),
}

/// Outcome of [`Sched::route_baton`]: what the thread that drained the
/// queue must do next.
pub(crate) enum Routed {
    /// The next resume targets the caller itself: update the local clock
    /// and keep running. Zero channel operations, zero context switches.
    SelfResume(SimTime),
    /// The baton was delivered to this (other) process's resume channel;
    /// the caller must stop running (park or exit).
    BatonSent(ProcId),
    /// The target process's resume channel is closed — its thread died
    /// without yielding. The caller must report it to the kernel.
    PeerDied(ProcId),
    /// A terminal condition; the caller must forward it to the kernel
    /// thread, which resolves the run.
    Terminal(KernelMsg),
}

/// The full world + scheduler state guarded by one mutex; only one context
/// (the kernel loop or one process) ever holds it at a time.
pub(crate) struct State<W> {
    pub(crate) world: W,
    pub(crate) sched: Sched<W>,
}

pub(crate) struct Shared<W> {
    pub(crate) state: Mutex<State<W>>,
    /// Run limits; read-only after construction, so it lives outside the
    /// mutex and is readable by every baton-holding thread during a drain.
    pub(crate) config: SimConfig,
}

impl<W> Shared<W> {
    /// Locks the state, recovering from poisoning: a process panicking
    /// inside a `with` block poisons the mutex, but the kernel still needs
    /// the state to report the panic and tear the run down.
    pub(crate) fn lock(&self) -> MutexGuard<'_, State<W>> {
        self.state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

/// Mutable view handed to event closures and to process `with` blocks:
/// the world plus scheduling operations, pinned at the current instant.
pub struct Ctx<'a, W> {
    /// The user world (e.g. the InfiniBand fabric).
    pub world: &'a mut W,
    pub(crate) sched: &'a mut Sched<W>,
}

impl<W> Ctx<'_, W> {
    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.sched.now
    }

    /// Schedule `f` to run against the world at absolute time `time`
    /// (must not be in the past).
    pub fn schedule_at(&mut self, time: SimTime, f: impl FnOnce(&mut Ctx<'_, W>) + Send + 'static) {
        self.sched.push(time, EventKind::Call(Box::new(f)));
    }

    /// Schedule `f` to run `delay` from now.
    pub fn schedule_after(
        &mut self,
        delay: SimDuration,
        f: impl FnOnce(&mut Ctx<'_, W>) + Send + 'static,
    ) {
        let t = self.sched.now + delay;
        self.schedule_at(t, f);
    }

    /// Wake the process behind `waker` at the current instant.
    /// No-op if the process already finished or a wake is pending.
    pub fn wake(&mut self, waker: Waker) {
        let t = self.sched.now;
        self.sched.wake_at(waker.proc_id, t);
    }

    /// Wake the process behind `waker` after `delay` (timer-style wake).
    pub fn wake_after(&mut self, waker: Waker, delay: SimDuration) {
        let t = self.sched.now + delay;
        self.sched.wake_at(waker.proc_id, t);
    }

    /// Drain and wake every waker in `wakers`.
    pub fn wake_all(&mut self, wakers: &mut Vec<Waker>) {
        for w in wakers.drain(..) {
            let t = self.sched.now;
            self.sched.wake_at(w.proc_id, t);
        }
    }
}

/// A report from a completed run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Virtual time when the last event was processed.
    pub end_time: SimTime,
    /// Total events processed by the kernel loop.
    pub events_processed: u64,
    /// Number of processes that ran to completion.
    pub procs_finished: usize,
}

/// A deterministic discrete-event simulation over a world `W`.
///
/// See the [crate docs](crate) for the execution model.
pub struct Sim<W: Send + 'static> {
    shared: Arc<Shared<W>>,
    handles: Vec<JoinHandle<()>>,
    /// Terminal-condition channel: processes report queue-empty, limits,
    /// and panics here. The per-handoff park/resume bookkeeping that used
    /// to flow through this channel is now done by the yielding process
    /// itself under the state lock, so the kernel thread sleeps on this
    /// receiver for the whole steady state of a run.
    yield_rx: Receiver<KernelMsg>,
    yield_tx: Sender<KernelMsg>,
}

impl<W: Send + 'static> Sim<W> {
    /// Creates a simulation owning `world`.
    pub fn new(world: W, config: SimConfig) -> Self {
        let (yield_tx, yield_rx) = channel();
        Sim {
            shared: Arc::new(Shared {
                state: Mutex::new(State {
                    world,
                    sched: Sched {
                        now: SimTime::ZERO,
                        seq: 0,
                        queue: BinaryHeap::new(),
                        procs: Vec::new(),
                        resume_txs: Vec::new(),
                        events_processed: 0,
                    },
                }),
                config,
            }),
            handles: Vec::new(),
            yield_rx,
            yield_tx,
        }
    }

    /// Runs `f` against the world before (or between) runs, e.g. for setup.
    pub fn with_world<R>(&self, f: impl FnOnce(&mut Ctx<'_, W>) -> R) -> R {
        let mut st = self.shared.lock();
        let State { world, sched } = &mut *st;
        f(&mut Ctx { world, sched })
    }

    /// Spawns a simulated process. The closure runs on its own OS thread,
    /// interleaved deterministically with other processes; it starts at
    /// virtual time zero (or at the instant `run` reaches its first resume).
    pub fn spawn(
        &mut self,
        name: impl Into<String>,
        body: impl FnOnce(ProcCtx<W>) + Send + 'static,
    ) -> ProcId {
        let name = name.into();
        let (resume_tx, resume_rx) = channel::<ResumeSignal>();
        let id = {
            let mut st = self.shared.lock();
            let id = ProcId(st.sched.procs.len());
            st.sched.procs.push(ProcSlot {
                name: name.clone(),
                status: ProcStatus::Parked,
                resume_pending: true,
                park_note: "not yet started",
            });
            st.sched.resume_txs.push(resume_tx);
            debug_assert_eq!(st.sched.procs.len(), st.sched.resume_txs.len());
            let t = st.sched.now;
            st.sched.push(t, EventKind::Resume(id));
            id
        };
        let ctx = ProcCtx::new(
            id,
            name,
            Arc::clone(&self.shared),
            resume_rx,
            self.yield_tx.clone(),
        );
        self.handles.push(spawn_proc(ctx, body));
        id
    }

    /// Runs the event loop until every process finished and the queue is
    /// empty, or a limit/deadlock/panic stops it.
    pub fn run(&mut self) -> Result<RunReport, SimError> {
        let result = self.event_loop();
        // On failure, unpark every live process with an abort signal so the
        // threads exit, then join them all.
        if result.is_err() {
            let st = self.shared.lock();
            for (slot, tx) in st.sched.procs.iter().zip(&st.sched.resume_txs) {
                if !matches!(slot.status, ProcStatus::Done) {
                    // Ignore send errors: the thread may have panicked already.
                    let _ = tx.send(ResumeSignal::Abort);
                }
            }
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
        result
    }

    /// The kernel's share of a run: bootstrap the baton into the process
    /// graph, then sleep until a terminal condition comes back. All
    /// steady-state scheduling — event draining and process-to-process
    /// handoffs — happens on the process threads themselves.
    fn event_loop(&mut self) -> Result<RunReport, SimError> {
        let routed = {
            let mut st = self.shared.lock();
            let State { world, sched } = &mut *st;
            sched.route_baton(world, &self.shared.config, None)
        };
        let msg = match routed {
            Routed::BatonSent(first) => match self.yield_rx.recv() {
                Ok(m) => m,
                // Unreachable in practice: `self.yield_tx` keeps the channel
                // open for the lifetime of the `Sim`.
                Err(_) => KernelMsg::Panicked {
                    proc_id: first,
                    message: "process channel closed".into(),
                },
            },
            Routed::PeerDied(p) => KernelMsg::Panicked {
                proc_id: p,
                message: "process thread exited unexpectedly".into(),
            },
            Routed::Terminal(m) => m,
            Routed::SelfResume(_) => {
                // Unreachable: `me` is `None` for the kernel, so the router
                // can never classify a handoff as a self-resume here. Fail
                // the run loudly rather than panicking or hanging.
                debug_assert!(false, "baton routed to the kernel loop itself");
                KernelMsg::Panicked {
                    proc_id: ProcId(usize::MAX),
                    message: "baton routed to the kernel loop".into(),
                }
            }
        };
        self.resolve_terminal(msg)
    }

    /// Turns the single terminal message of a run into its result. Only
    /// the kernel thread resolves terminal conditions; the sender is
    /// parked (or exited), so the state is quiescent under the lock here.
    fn resolve_terminal(&self, msg: KernelMsg) -> Result<RunReport, SimError> {
        match msg {
            KernelMsg::QueueEmpty => {
                let st = self.shared.lock();
                let parked: Vec<(String, String)> = st
                    .sched
                    .procs
                    .iter()
                    .filter(|p| !matches!(p.status, ProcStatus::Done))
                    .map(|p| (p.name.clone(), p.park_note.to_string()))
                    .collect();
                if parked.is_empty() {
                    return Ok(RunReport {
                        end_time: st.sched.now,
                        events_processed: st.sched.events_processed,
                        procs_finished: st.sched.procs.len(),
                    });
                }
                Err(SimError::Deadlock(DeadlockInfo {
                    at: st.sched.now,
                    parked,
                }))
            }
            KernelMsg::EventLimit { events, at } => {
                Err(SimError::EventLimitExceeded { events, at })
            }
            KernelMsg::TimeLimit { at } => Err(SimError::TimeLimitExceeded { at }),
            KernelMsg::Panicked { proc_id, message } => Err(SimError::ProcPanicked {
                name: self.proc_name(proc_id),
                message,
            }),
        }
    }

    fn proc_name(&self, p: ProcId) -> String {
        self.shared
            .lock()
            .sched
            .procs
            .get(p.0)
            .map_or_else(|| "<kernel>".to_string(), |slot| slot.name.clone())
    }

    /// Consumes the simulation and returns the world (for post-run
    /// inspection of statistics).
    pub fn into_world(self) -> W {
        // All threads were joined by `run`; if `run` was never called the
        // spawned threads are still blocked on their first resume, so drop
        // their channels first by aborting them.
        {
            let st = self.shared.lock();
            for (slot, tx) in st.sched.procs.iter().zip(&st.sched.resume_txs) {
                if !matches!(slot.status, ProcStatus::Done) {
                    let _ = tx.send(ResumeSignal::Abort);
                }
            }
        }
        for h in self.handles {
            let _ = h.join();
        }
        Arc::try_unwrap(self.shared)
            // simlint: allow(no-panic-in-lib): every process thread was joined above, so the Arc must be unique; a leak here is unrecoverable
            .unwrap_or_else(|_| panic!("outstanding references to simulation state"))
            .state
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .world
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sim_finishes_immediately() {
        let mut sim: Sim<()> = Sim::new((), SimConfig::default());
        let report = sim.run().unwrap();
        assert_eq!(report.end_time, SimTime::ZERO);
        assert_eq!(report.procs_finished, 0);
    }

    #[test]
    fn scheduled_events_run_in_order() {
        let mut sim: Sim<Vec<u64>> = Sim::new(Vec::new(), SimConfig::default());
        sim.with_world(|ctx| {
            ctx.schedule_at(SimTime::from_nanos(20), |c| {
                c.world.push(c.now().as_nanos())
            });
            ctx.schedule_at(SimTime::from_nanos(10), |c| {
                c.world.push(c.now().as_nanos());
                // Nested scheduling from inside an event.
                c.schedule_after(SimDuration::nanos(5), |c2| {
                    c2.world.push(c2.now().as_nanos())
                });
            });
        });
        sim.run().unwrap();
        assert_eq!(sim.into_world(), vec![10, 15, 20]);
    }

    #[test]
    fn process_advances_time() {
        let mut sim: Sim<u64> = Sim::new(0, SimConfig::default());
        sim.spawn("p", |mut p| {
            p.advance(SimDuration::micros(1));
            p.advance(SimDuration::micros(2));
            p.with(|ctx| *ctx.world = ctx.now().as_nanos());
        });
        let report = sim.run().unwrap();
        assert_eq!(report.end_time.as_nanos(), 3_000);
        assert_eq!(sim.into_world(), 3_000);
    }

    #[test]
    fn two_processes_interleave_deterministically() {
        let mut sim: Sim<Vec<(usize, u64)>> = Sim::new(Vec::new(), SimConfig::default());
        for id in 0..2usize {
            sim.spawn(format!("p{id}"), move |mut p| {
                for step in 0..3u64 {
                    p.advance(SimDuration::nanos(10 + id as u64));
                    p.with(|ctx| {
                        let t = ctx.now().as_nanos();
                        ctx.world.push((id, t));
                    });
                    let _ = step;
                }
            });
        }
        sim.run().unwrap();
        let trace = sim.into_world();
        // p0 ticks at 10,20,30; p1 at 11,22,33 — ordered by time.
        assert_eq!(
            trace,
            vec![(0, 10), (1, 11), (0, 20), (1, 22), (0, 30), (1, 33)]
        );
    }

    #[test]
    fn waker_roundtrip() {
        // World holds an optional waker plus a flag; one process parks on the
        // flag, an event sets it and wakes.
        struct W {
            flag: bool,
            waiter: Option<Waker>,
            observed_at: u64,
        }
        let mut sim: Sim<W> = Sim::new(
            W {
                flag: false,
                waiter: None,
                observed_at: 0,
            },
            SimConfig::default(),
        );
        sim.with_world(|ctx| {
            ctx.schedule_at(SimTime::from_nanos(500), |c| {
                c.world.flag = true;
                if let Some(w) = c.world.waiter.take() {
                    c.wake(w);
                }
            });
        });
        sim.spawn("waiter", |mut p| {
            let waker = p.waker();
            loop {
                let ready = p.with(|ctx| {
                    if ctx.world.flag {
                        true
                    } else {
                        ctx.world.waiter = Some(waker);
                        false
                    }
                });
                if ready {
                    break;
                }
                p.park("waiting for flag");
            }
            p.with(|ctx| ctx.world.observed_at = ctx.now().as_nanos());
        });
        sim.run().unwrap();
        assert_eq!(sim.into_world().observed_at, 500);
    }

    #[test]
    fn deadlock_is_detected_and_reported() {
        let mut sim: Sim<()> = Sim::new((), SimConfig::default());
        sim.spawn("stuck", |mut p| {
            p.park("waiting for a message that never comes");
        });
        match sim.run() {
            Err(SimError::Deadlock(info)) => {
                assert_eq!(info.parked.len(), 1);
                assert_eq!(info.parked[0].0, "stuck");
                assert!(info.parked[0].1.contains("never comes"));
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn process_panic_is_reported() {
        let mut sim: Sim<()> = Sim::new((), SimConfig::default());
        sim.spawn("bug", |_p| panic!("intentional test panic"));
        match sim.run() {
            Err(SimError::ProcPanicked { name, message }) => {
                assert_eq!(name, "bug");
                assert!(message.contains("intentional"), "{message}");
            }
            other => panic!("expected panic report, got {other:?}"),
        }
    }

    #[test]
    fn event_limit_guards_livelock() {
        let mut sim: Sim<()> = Sim::new(
            (),
            SimConfig {
                max_events: 100,
                ..Default::default()
            },
        );
        // A self-perpetuating timer chain.
        sim.with_world(|ctx| {
            fn tick(c: &mut Ctx<'_, ()>) {
                c.schedule_after(SimDuration::nanos(1), tick);
            }
            ctx.schedule_at(SimTime::ZERO, tick);
        });
        match sim.run() {
            // The limit reports the configured ceiling, not ceiling + 1.
            Err(SimError::EventLimitExceeded { events, .. }) => assert_eq!(events, 100),
            other => panic!("expected event limit, got {other:?}"),
        }
    }

    #[test]
    fn time_limit_guards_runaway_clock() {
        let mut sim: Sim<()> = Sim::new(
            (),
            SimConfig {
                max_time: SimTime::from_nanos(50),
                ..Default::default()
            },
        );
        sim.spawn("slow", |mut p| {
            p.advance(SimDuration::nanos(200));
        });
        assert!(matches!(sim.run(), Err(SimError::TimeLimitExceeded { .. })));
    }

    #[test]
    fn spawned_after_run_does_not_hang_into_world() {
        // `into_world` without `run` must abort parked threads cleanly.
        let mut sim: Sim<u32> = Sim::new(7, SimConfig::default());
        sim.spawn("never-ran", |mut p| {
            p.advance(SimDuration::nanos(1));
        });
        assert_eq!(sim.into_world(), 7);
    }

    #[test]
    fn into_world_without_run_aborts_many_procs_cleanly() {
        // Same as above, but with enough processes that a missed abort
        // would leave a thread holding an `Arc` and fail the unwrap.
        let mut sim: Sim<u32> = Sim::new(3, SimConfig::default());
        for i in 0..8 {
            sim.spawn(format!("idle{i}"), |mut p| {
                p.advance(SimDuration::nanos(1));
                p.park("never woken");
            });
        }
        assert_eq!(sim.into_world(), 3);
    }

    #[test]
    fn panic_while_holding_baton_mid_handoff_is_reported() {
        // "parked" yields first and hands the baton *directly* to "bomb",
        // which panics while holding it. The panic must surface as
        // `ProcPanicked` (the kernel thread is asleep at that moment, so a
        // lost message would hang the run instead).
        let mut sim: Sim<()> = Sim::new((), SimConfig::default());
        sim.spawn("parked", |mut p| p.park("waiting forever"));
        sim.spawn("bomb", |mut p| {
            p.advance(SimDuration::nanos(1));
            panic!("boom in direct handoff");
        });
        match sim.run() {
            Err(SimError::ProcPanicked { name, message }) => {
                assert_eq!(name, "bomb");
                assert!(message.contains("boom"), "{message}");
            }
            other => panic!("expected panic report, got {other:?}"),
        }
    }

    #[test]
    fn deadlock_reports_every_parked_process_with_note() {
        // When the *last runnable* process parks and the queue drains, the
        // deadlock report must cover all parked processes with the notes
        // they recorded themselves (no kernel-side bookkeeping remains).
        let mut sim: Sim<()> = Sim::new((), SimConfig::default());
        sim.spawn("alice", |mut p| p.park("waiting for bob"));
        sim.spawn("bob", |mut p| {
            p.advance(SimDuration::nanos(5));
            p.park("waiting for alice");
        });
        sim.spawn("carol", |mut p| {
            p.advance(SimDuration::nanos(9));
            p.park("waiting for the fabric");
        });
        match sim.run() {
            Err(SimError::Deadlock(info)) => {
                assert_eq!(info.at, SimTime::from_nanos(9));
                assert_eq!(
                    info.parked,
                    vec![
                        ("alice".to_string(), "waiting for bob".to_string()),
                        ("bob".to_string(), "waiting for alice".to_string()),
                        ("carol".to_string(), "waiting for the fabric".to_string()),
                    ]
                );
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn finishing_process_hands_baton_to_peer() {
        // "short" finishes while "long" still has work: the exiting thread
        // must route the baton straight to "long" (the kernel only hears
        // the final queue-empty).
        let mut sim: Sim<Vec<&'static str>> = Sim::new(Vec::new(), SimConfig::default());
        sim.spawn("short", |mut p| {
            p.advance(SimDuration::nanos(1));
            p.with(|ctx| ctx.world.push("short"));
        });
        sim.spawn("long", |mut p| {
            p.advance(SimDuration::nanos(2));
            p.advance(SimDuration::nanos(10));
            p.with(|ctx| ctx.world.push("long"));
        });
        let report = sim.run().unwrap();
        assert_eq!(report.end_time.as_nanos(), 12);
        assert_eq!(report.procs_finished, 2);
        assert_eq!(sim.into_world(), vec!["short", "long"]);
    }

    #[test]
    fn many_processes_complete() {
        let mut sim: Sim<u64> = Sim::new(0, SimConfig::default());
        for i in 0..32u64 {
            sim.spawn(format!("p{i}"), move |mut p| {
                p.advance(SimDuration::nanos(i + 1));
                p.with(|ctx| *ctx.world += 1);
            });
        }
        let report = sim.run().unwrap();
        assert_eq!(report.procs_finished, 32);
        assert_eq!(sim.into_world(), 32);
    }
}
