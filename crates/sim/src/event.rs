//! Event queue entries and ordering.

use crate::engine::Ctx;
use crate::process::ProcId;
use crate::time::SimTime;
use std::cmp::Ordering;

/// A scheduled world mutation. Everything runs on the executor thread, so
/// event closures need not be `Send`.
pub(crate) type EventFn<W> = Box<dyn FnOnce(&mut Ctx<'_, W>)>;

pub(crate) enum EventKind<W> {
    /// Run a closure against the world, inline in the poll loop's drain;
    /// `(time, seq)` ordering alone fixes the results.
    Call(EventFn<W>),
    /// Resume a parked process: the poll loop polls its coroutine once.
    Resume(ProcId),
}

pub(crate) struct Entry<W> {
    pub time: SimTime,
    pub seq: u64,
    pub kind: EventKind<W>,
}

impl<W> Entry<W> {
    fn key(&self) -> (SimTime, u64) {
        (self.time, self.seq)
    }
}

// Ordering is (time, seq): deterministic FIFO among same-time events.
impl<W> PartialEq for Entry<W> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl<W> Eq for Entry<W> {}
impl<W> PartialOrd for Entry<W> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<W> Ord for Entry<W> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.key().cmp(&other.key())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    fn entry(time: u64, seq: u64) -> Entry<()> {
        Entry {
            time: SimTime::from_nanos(time),
            seq,
            kind: EventKind::Resume(ProcId(0)),
        }
    }

    #[test]
    fn min_heap_pops_in_time_then_seq_order() {
        let mut heap = BinaryHeap::new();
        heap.push(Reverse(entry(20, 3)));
        heap.push(Reverse(entry(10, 5)));
        heap.push(Reverse(entry(10, 4)));
        heap.push(Reverse(entry(5, 9)));
        let order: Vec<(u64, u64)> = std::iter::from_fn(|| heap.pop())
            .map(|Reverse(e)| (e.time.as_nanos(), e.seq))
            .collect();
        assert_eq!(order, vec![(5, 9), (10, 4), (10, 5), (20, 3)]);
    }
}
