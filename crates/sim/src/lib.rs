//! `ibsim` — a deterministic discrete-event simulation (DES) engine whose
//! simulated processes are ordinary OS threads.
//!
//! The engine was built as the substrate for reproducing *"Implementing
//! Efficient and Scalable Flow Control Schemes in MPI over InfiniBand"*
//! (Liu & Panda, IPDPS 2004): MPI ranks run as threads written in a natural
//! blocking style, while the network fabric is modelled with closure events
//! on a virtual clock.
//!
//! # Model
//!
//! * **Virtual time** is an integer nanosecond counter ([`SimTime`]); events
//!   are ordered by `(time, sequence)` so execution is fully deterministic.
//! * **The world** is a user-supplied state type `W` (e.g. an InfiniBand
//!   fabric). Events are boxed closures receiving [`Ctx<W>`], which exposes
//!   the world, the clock, and scheduling operations.
//! * **Processes** ([`Sim::spawn`]) are OS threads coordinated by a
//!   strict-alternation baton: at any instant either the kernel loop or
//!   exactly one process runs. Processes interact with the world through
//!   [`ProcCtx`], block on [`Waker`] tokens, and advance time explicitly.
//! * **Direct handoff**: the baton travels process-to-process. A yielding
//!   process drains ready events and routes the next resume itself — back
//!   to itself without any channel operation (the solo-runnable fast
//!   path), or straight to the next process's resume channel. The kernel
//!   thread only bootstraps the run and resolves terminal conditions
//!   (queue empty, deadlock, limits, panics). Who drains an event never
//!   affects results: virtual-time order is fixed by the `(time, seq)`
//!   queue alone.
//! * **Termination**: [`Sim::run`] returns when every process finished, when
//!   the event queue drains, or when a configured event/time limit fires.
//!   If processes are still parked with an empty queue the run reports a
//!   **deadlock** with a per-process diagnostic — the MPI layer above uses
//!   this to demonstrate the credit-message deadlock the paper's optimistic
//!   scheme avoids.
//!
//! # Example
//!
//! ```
//! use ibsim::{Sim, SimConfig, SimDuration};
//!
//! let mut sim: Sim<u64> = Sim::new(0, SimConfig::default());
//! sim.spawn("worker", |mut p| {
//!     p.advance(SimDuration::micros(5));
//!     p.with(|ctx| *ctx.world += ctx.now().as_nanos());
//! });
//! let report = sim.run().unwrap();
//! assert_eq!(report.end_time.as_nanos(), 5_000);
//! assert_eq!(sim.into_world(), 5_000);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

mod engine;
mod error;
mod event;
mod process;
pub mod rng;
pub mod stats;
mod time;
mod waker;

pub use engine::{Ctx, RunReport, Sim, SimConfig};
pub use error::{DeadlockInfo, SimError};
pub use process::{ProcCtx, ProcId};
pub use time::{SimDuration, SimTime};
pub use waker::Waker;
