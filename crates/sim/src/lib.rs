//! `ibsim` — a deterministic discrete-event simulation (DES) engine whose
//! simulated processes are stackless coroutines multiplexed on one thread.
//!
//! The engine was built as the substrate for reproducing *"Implementing
//! Efficient and Scalable Flow Control Schemes in MPI over InfiniBand"*
//! (Liu & Panda, IPDPS 2004): MPI ranks are written in a natural blocking
//! style as `async` bodies — rustc compiles each into a resumable state
//! machine — while the network fabric is modelled with closure events on a
//! virtual clock. There is no async runtime: a hand-rolled poll loop
//! ([`Sim::run`]) drives everything, so the workspace stays hermetic and
//! zero-dependency, and a world of hundreds of ranks costs zero OS threads.
//!
//! # Model
//!
//! * **Virtual time** is an integer nanosecond counter ([`SimTime`]); events
//!   are ordered by `(time, sequence)` so execution is fully deterministic.
//! * **The world** is a user-supplied state type `W` (e.g. an InfiniBand
//!   fabric). Events are boxed closures receiving [`Ctx<W>`], which exposes
//!   the world, the clock, and scheduling operations.
//! * **Processes** ([`Sim::spawn`]) are coroutines: each `spawn` stores the
//!   body's `async` state machine, and the poll loop steps exactly one at a
//!   time. Processes interact with the world through [`ProcCtx`], suspend
//!   on [`Waker`] tokens, and advance time explicitly. Suspension points
//!   are only ever [`ProcCtx::park`] and [`ProcCtx::advance`] awaits.
//! * **Uniform handoff**: the poll loop pops the next `(time, seq)` event
//!   and either runs a closure inline or polls the target coroutine —
//!   whether that target is the process that just yielded (self-resume) or
//!   a peer makes no difference in cost: one heap pop plus one poll. Which
//!   coroutine runs when never affects results: virtual-time order is
//!   fixed by the `(time, seq)` queue alone.
//! * **Termination**: [`Sim::run`] returns when every process finished, when
//!   the event queue drains, or when a configured event/time limit fires.
//!   If processes are still parked with an empty queue the run reports a
//!   **deadlock** with a per-process diagnostic — the MPI layer above uses
//!   this to demonstrate the credit-message deadlock the paper's optimistic
//!   scheme avoids.
//!
//! # Example
//!
//! ```
//! use ibsim::{Sim, SimConfig, SimDuration};
//!
//! let mut sim: Sim<u64> = Sim::new(0, SimConfig::default());
//! sim.spawn("worker", |mut p| async move {
//!     p.advance(SimDuration::micros(5)).await;
//!     p.with(|ctx| *ctx.world += ctx.now().as_nanos());
//! });
//! let report = sim.run().unwrap();
//! assert_eq!(report.end_time.as_nanos(), 5_000);
//! assert_eq!(sim.into_world(), 5_000);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod codec;
mod engine;
mod error;
mod event;
mod process;
pub mod rng;
pub mod stats;
mod time;
mod waker;

pub use engine::{Ctx, FenceAction, RunReport, Sim, SimClock, SimConfig};
pub use error::{DeadlockInfo, SimError};
pub use process::{ProcCtx, ProcId};
pub use time::{SimDuration, SimTime};
pub use waker::Waker;
