//! A small, checked byte codec for versioned snapshot formats.
//!
//! Checkpoint images (and any other on-disk artifacts) are serialized
//! through this module so every field is length-checked on the way out
//! and bounds-checked on the way back in: truncation, unknown tags and
//! out-of-range values surface as typed [`CodecError`]s instead of
//! panics, in the same spirit as the MPI layer's checked wire codec.
//!
//! The format is self-describing at the section level: a stream is a
//! sequence of `(u32 tag, u64 length, body)` frames, so a reader can
//! verify it is looking at the section it expects (and a future reader
//! could skip sections it does not understand).

use std::fmt;

/// Errors surfaced by the checked snapshot codec.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// Fewer bytes remained than the field required.
    Truncated {
        /// What was being decoded.
        context: &'static str,
        /// Bytes the field needed.
        needed: usize,
        /// Bytes actually remaining.
        have: usize,
    },
    /// A tag byte/word did not match the expected value.
    BadTag {
        /// What was being decoded.
        context: &'static str,
        /// The tag the decoder expected.
        want: u64,
        /// The tag actually present.
        got: u64,
    },
    /// A decoded value does not fit the in-memory type it targets.
    Overflow {
        /// What was being decoded.
        context: &'static str,
        /// The value that did not fit.
        value: u64,
        /// Largest value the target type can carry.
        max: u64,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated {
                context,
                needed,
                have,
            } => write!(f, "{context}: truncated ({have} bytes left, need {needed})"),
            CodecError::BadTag { context, want, got } => {
                write!(f, "{context}: bad tag {got:#x} (expected {want:#x})")
            }
            CodecError::Overflow {
                context,
                value,
                max,
            } => write!(f, "{context}: value {value} exceeds max {max}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// An append-only little-endian byte writer.
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// Consumes the writer and returns the bytes written.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as a `u64` (lossless: the simulator only targets
    /// platforms where `usize` is at most 64 bits).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Appends an `i32` (two's-complement little-endian).
    pub fn i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` by bit pattern (exact round-trip).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends a `bool` as one byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// Appends a length-prefixed byte string.
    pub fn bytes(&mut self, v: &[u8]) {
        self.usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Appends `Some`/`None` as a presence byte plus the value.
    pub fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(x) => {
                self.u8(1);
                self.u64(x);
            }
            None => self.u8(0),
        }
    }

    /// Writes a tagged, length-prefixed section whose body is produced by
    /// `f`. The length is patched in after the body is written.
    pub fn section(&mut self, tag: u32, f: impl FnOnce(&mut Writer)) {
        self.u32(tag);
        let mark = self.buf.len();
        self.u64(0); // placeholder length
        f(self);
        let body_len = (self.buf.len() - mark - 8) as u64;
        self.buf[mark..mark + 8].copy_from_slice(&body_len.to_le_bytes());
    }
}

/// A bounds-checked little-endian byte reader over a borrowed slice.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over `buf`, positioned at its start.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated {
                context,
                needed: n,
                have: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self, context: &'static str) -> Result<u8, CodecError> {
        Ok(self.take(1, context)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self, context: &'static str) -> Result<u16, CodecError> {
        let b = self.take(2, context)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self, context: &'static str) -> Result<u32, CodecError> {
        let b = self.take(4, context)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self, context: &'static str) -> Result<u64, CodecError> {
        let b = self.take(8, context)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a `u64` and converts it to `usize`, checking the platform
    /// width.
    pub fn usize(&mut self, context: &'static str) -> Result<usize, CodecError> {
        let v = self.u64(context)?;
        usize::try_from(v).map_err(|_| CodecError::Overflow {
            context,
            value: v,
            max: usize::MAX as u64,
        })
    }

    /// Reads an `i32`.
    pub fn i32(&mut self, context: &'static str) -> Result<i32, CodecError> {
        let b = self.take(4, context)?;
        Ok(i32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads an `f64` by bit pattern.
    pub fn f64(&mut self, context: &'static str) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64(context)?))
    }

    /// Reads a `bool`; any byte other than 0/1 is a [`CodecError::BadTag`].
    pub fn bool(&mut self, context: &'static str) -> Result<bool, CodecError> {
        match self.u8(context)? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(CodecError::BadTag {
                context,
                want: 1,
                got: u64::from(b),
            }),
        }
    }

    /// Reads a length-prefixed byte string.
    pub fn bytes(&mut self, context: &'static str) -> Result<Vec<u8>, CodecError> {
        let len = self.usize(context)?;
        Ok(self.take(len, context)?.to_vec())
    }

    /// Reads a presence byte plus an optional `u64`.
    pub fn opt_u64(&mut self, context: &'static str) -> Result<Option<u64>, CodecError> {
        match self.u8(context)? {
            0 => Ok(None),
            1 => Ok(Some(self.u64(context)?)),
            b => Err(CodecError::BadTag {
                context,
                want: 1,
                got: u64::from(b),
            }),
        }
    }

    /// Reads a section frame, checks its tag, and returns a sub-reader
    /// scoped to exactly the section body.
    pub fn section(&mut self, tag: u32, context: &'static str) -> Result<Reader<'a>, CodecError> {
        let got = self.u32(context)?;
        if got != tag {
            return Err(CodecError::BadTag {
                context,
                want: u64::from(tag),
                got: u64::from(got),
            });
        }
        let len = self.usize(context)?;
        Ok(Reader::new(self.take(len, context)?))
    }

    /// Asserts every byte was consumed; trailing garbage is a
    /// [`CodecError::Truncated`]-style report in reverse.
    pub fn done(&self, context: &'static str) -> Result<(), CodecError> {
        if self.remaining() != 0 {
            return Err(CodecError::BadTag {
                context,
                want: 0,
                got: self.remaining() as u64,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        let mut w = Writer::new();
        w.u8(7);
        w.u16(513);
        w.u32(70_000);
        w.u64(1 << 40);
        w.usize(42);
        w.i32(-9);
        w.f64(-0.125);
        w.bool(true);
        w.bool(false);
        w.bytes(b"hello");
        w.opt_u64(Some(5));
        w.opt_u64(None);
        let bytes = w.finish();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8("a").unwrap(), 7);
        assert_eq!(r.u16("b").unwrap(), 513);
        assert_eq!(r.u32("c").unwrap(), 70_000);
        assert_eq!(r.u64("d").unwrap(), 1 << 40);
        assert_eq!(r.usize("e").unwrap(), 42);
        assert_eq!(r.i32("f").unwrap(), -9);
        assert_eq!(r.f64("g").unwrap(), -0.125);
        assert!(r.bool("h").unwrap());
        assert!(!r.bool("i").unwrap());
        assert_eq!(r.bytes("j").unwrap(), b"hello");
        assert_eq!(r.opt_u64("k").unwrap(), Some(5));
        assert_eq!(r.opt_u64("l").unwrap(), None);
        r.done("end").unwrap();
    }

    #[test]
    fn sections_nest_and_check_tags() {
        let mut w = Writer::new();
        w.section(0xAA, |w| {
            w.u32(1);
            w.section(0xBB, |w| w.u64(2));
        });
        w.u8(9);
        let bytes = w.finish();
        let mut r = Reader::new(&bytes);
        let mut s = r.section(0xAA, "outer").unwrap();
        assert_eq!(s.u32("x").unwrap(), 1);
        let mut inner = s.section(0xBB, "inner").unwrap();
        assert_eq!(inner.u64("y").unwrap(), 2);
        inner.done("inner").unwrap();
        s.done("outer").unwrap();
        assert_eq!(r.u8("tail").unwrap(), 9);
        r.done("end").unwrap();
    }

    #[test]
    fn wrong_section_tag_is_an_error() {
        let mut w = Writer::new();
        w.section(1, |w| w.u8(0));
        let bytes = w.finish();
        let mut r = Reader::new(&bytes);
        assert!(matches!(
            r.section(2, "s"),
            Err(CodecError::BadTag {
                want: 2,
                got: 1,
                ..
            })
        ));
    }

    #[test]
    fn truncation_is_an_error() {
        let mut w = Writer::new();
        w.u64(5);
        let bytes = w.finish();
        let mut r = Reader::new(&bytes[..3]);
        assert!(matches!(
            r.u64("field"),
            Err(CodecError::Truncated {
                needed: 8,
                have: 3,
                ..
            })
        ));
    }

    #[test]
    fn bad_bool_is_an_error() {
        let mut r = Reader::new(&[7]);
        assert!(matches!(r.bool("flag"), Err(CodecError::BadTag { .. })));
    }

    #[test]
    fn trailing_bytes_fail_done() {
        let r = Reader::new(&[1, 2, 3]);
        assert!(r.done("end").is_err());
    }

    #[test]
    fn errors_render() {
        let e = CodecError::Truncated {
            context: "qp.msn",
            needed: 8,
            have: 2,
        };
        assert!(e.to_string().contains("qp.msn"));
        assert!(CodecError::BadTag {
            context: "s",
            want: 1,
            got: 2
        }
        .to_string()
        .contains("0x2"));
        assert!(CodecError::Overflow {
            context: "s",
            value: 10,
            max: 5
        }
        .to_string()
        .contains("10"));
    }
}
