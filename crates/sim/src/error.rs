//! Engine error and diagnostic types.

use crate::time::SimTime;
use std::fmt;

/// Why a simulation run failed.
#[derive(Debug)]
pub enum SimError {
    /// The event queue drained while one or more processes were still
    /// parked: no event can ever wake them again.
    Deadlock(DeadlockInfo),
    /// A process panicked (a bug in process code, or a failed assertion).
    ProcPanicked {
        /// Name given to the process at spawn time.
        name: String,
        /// Best-effort stringified panic payload.
        message: String,
    },
    /// The configured event-count limit was exceeded (livelock guard, e.g.
    /// an RNR-retry storm that can never make progress).
    EventLimitExceeded {
        /// Number of events processed when the limit fired.
        events: u64,
        /// Virtual time at which the limit fired.
        at: SimTime,
    },
    /// The configured virtual-time horizon was exceeded.
    TimeLimitExceeded {
        /// Virtual time at which the limit fired.
        at: SimTime,
    },
}

/// Diagnostic for a deadlocked run: one entry per process that can never be
/// woken, with the note it passed when parking (e.g. which MPI call it was
/// blocked in).
#[derive(Debug, Clone)]
pub struct DeadlockInfo {
    /// Virtual time at which the deadlock was detected.
    pub at: SimTime,
    /// `(process name, park note)` for every parked process.
    pub parked: Vec<(String, String)>,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock(info) => {
                writeln!(
                    f,
                    "deadlock at {}: {} process(es) parked forever:",
                    info.at,
                    info.parked.len()
                )?;
                for (name, note) in &info.parked {
                    writeln!(f, "  - {name}: {note}")?;
                }
                Ok(())
            }
            SimError::ProcPanicked { name, message } => {
                write!(f, "process '{name}' panicked: {message}")
            }
            SimError::EventLimitExceeded { events, at } => {
                write!(f, "event limit exceeded ({events} events) at {at}")
            }
            SimError::TimeLimitExceeded { at } => write!(f, "time limit exceeded at {at}"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_deadlock() {
        let err = SimError::Deadlock(DeadlockInfo {
            at: SimTime::from_nanos(5_000),
            parked: vec![("rank0".into(), "MPI_Recv".into())],
        });
        let s = err.to_string();
        assert!(s.contains("deadlock"), "{s}");
        assert!(s.contains("rank0"), "{s}");
        assert!(s.contains("MPI_Recv"), "{s}");
    }

    #[test]
    fn display_limits() {
        let s = SimError::EventLimitExceeded {
            events: 10,
            at: SimTime::ZERO,
        }
        .to_string();
        assert!(s.contains("event limit"), "{s}");
        let s = SimError::TimeLimitExceeded { at: SimTime::ZERO }.to_string();
        assert!(s.contains("time limit"), "{s}");
    }
}
