//! Virtual time: instants and durations in integer nanoseconds.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the simulation's virtual clock, in nanoseconds since the
/// start of the run.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Constructs an instant from nanoseconds since simulation start.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Nanoseconds since simulation start.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds since simulation start, as a float (for reporting).
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Seconds since simulation start, as a float (for reporting).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// The duration elapsed since `earlier`.
    ///
    /// # Panics
    /// Panics if `earlier` is later than `self`.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("SimTime::since: earlier instant is in the future"),
        )
    }

    /// Saturating difference; zero if `earlier` is later than `self`.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Constructs a duration from nanoseconds.
    #[inline]
    pub const fn nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Constructs a duration from microseconds.
    #[inline]
    pub const fn micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Constructs a duration from milliseconds.
    #[inline]
    pub const fn millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Constructs a duration from seconds.
    #[inline]
    pub const fn secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Constructs a duration from fractional microseconds, rounding to the
    /// nearest nanosecond. Useful for calibrated hardware parameters.
    #[inline]
    pub fn micros_f64(us: f64) -> Self {
        debug_assert!(us >= 0.0, "negative duration");
        SimDuration((us * 1_000.0).round() as u64)
    }

    /// The span in nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The span in fractional microseconds.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// The span in fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Time to move `bytes` at `bytes_per_sec`, rounded up to whole
    /// nanoseconds (serialization/DMA cost model).
    #[inline]
    pub fn for_bytes(bytes: u64, bytes_per_sec: u64) -> Self {
        assert!(bytes_per_sec > 0, "zero rate");
        // ceil(bytes * 1e9 / rate) without overflow for realistic sizes.
        let ns = (bytes as u128 * 1_000_000_000u128).div_ceil(bytes_per_sec as u128);
        SimDuration(ns as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("SimTime overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_sub(rhs.0).expect("SimTime underflow"))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("SimDuration overflow"))
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("SimDuration underflow"))
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(rhs).expect("SimDuration overflow"))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}ns", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_micros_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ns", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_micros_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimDuration::micros(3).as_nanos(), 3_000);
        assert_eq!(SimDuration::millis(2).as_nanos(), 2_000_000);
        assert_eq!(SimDuration::secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(SimDuration::micros_f64(1.5).as_nanos(), 1_500);
        assert_eq!(SimTime::from_nanos(42).as_nanos(), 42);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_nanos(100) + SimDuration::nanos(50);
        assert_eq!(t.as_nanos(), 150);
        assert_eq!(t.since(SimTime::from_nanos(100)).as_nanos(), 50);
        assert_eq!(
            (SimDuration::nanos(10) + SimDuration::nanos(5)).as_nanos(),
            15
        );
        assert_eq!((SimDuration::nanos(10) * 3).as_nanos(), 30);
        assert_eq!((SimDuration::nanos(10) / 3).as_nanos(), 3);
    }

    #[test]
    fn for_bytes_rounds_up() {
        // 1 byte at 1 GB/s = 1 ns exactly.
        assert_eq!(SimDuration::for_bytes(1, 1_000_000_000).as_nanos(), 1);
        // 1 byte at 3 GB/s = 1/3 ns, rounded up to 1.
        assert_eq!(SimDuration::for_bytes(1, 3_000_000_000).as_nanos(), 1);
        // 2048 bytes at 1 GB/s = 2048 ns.
        assert_eq!(SimDuration::for_bytes(2048, 1_000_000_000).as_nanos(), 2048);
        // Zero bytes costs zero regardless of rate.
        assert_eq!(SimDuration::for_bytes(0, 7).as_nanos(), 0);
    }

    #[test]
    fn saturating_since_clamps() {
        let early = SimTime::from_nanos(10);
        let late = SimTime::from_nanos(20);
        assert_eq!(early.saturating_since(late).as_nanos(), 0);
        assert_eq!(late.saturating_since(early).as_nanos(), 10);
    }

    #[test]
    #[should_panic(expected = "future")]
    fn since_panics_on_negative() {
        let _ = SimTime::from_nanos(1).since(SimTime::from_nanos(2));
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimTime::from_nanos(1_500)), "1.500us");
        assert_eq!(format!("{}", SimDuration::nanos(250)), "0.250us");
        assert_eq!(format!("{:?}", SimDuration::nanos(250)), "250ns");
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::nanos).sum();
        assert_eq!(total.as_nanos(), 10);
    }
}
