//! Wake tokens linking world state to parked processes.

use crate::process::ProcId;

/// A handle that world code (e.g. a completion queue) can use to wake the
/// process that created it.
///
/// Waking is asynchronous: it pushes a `Resume` event, and the process's
/// coroutine is polled when the executor's drain reaches that event.
///
/// Wakes may be *spurious*: a process that re-parks after handing out a
/// waker can be woken by a stale token, so blocking loops must re-check
/// their condition after every wake. Waking a finished process is a no-op.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Waker {
    pub(crate) proc_id: ProcId,
}

impl Waker {
    /// The process this waker targets.
    pub fn proc_id(&self) -> ProcId {
        self.proc_id
    }
}
