//! Lightweight statistics helpers shared by the fabric and MPI layers.

use std::fmt;

/// A monotonically increasing counter.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Adds one.
    #[inline]
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// Tracks the maximum of a series of observations (e.g. the paper's Table 2:
/// maximum number of posted buffers per connection).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Peak(u64);

impl Peak {
    /// Observes a value; retains the maximum seen.
    #[inline]
    pub fn observe(&mut self, v: u64) {
        if v > self.0 {
            self.0 = v;
        }
    }

    /// Maximum observed so far (zero if nothing observed).
    #[inline]
    pub fn get(&self) -> u64 {
        self.0
    }
}

/// Power-of-two bucketed histogram for message sizes / latencies.
#[derive(Clone, Debug)]
pub struct Histogram {
    buckets: [u64; 64],
    count: u64,
    sum: u64,
    min: Option<u64>,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; 64],
            count: 0,
            sum: 0,
            min: None,
            max: 0,
        }
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    pub fn record(&mut self, v: u64) {
        let idx = if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        };
        self.buckets[idx.min(63)] += 1;
        self.count += 1;
        self.sum += v;
        self.min = Some(self.min.map_or(v, |m| m.min(v)));
        self.max = self.max.max(v);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean of observations (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Smallest observation (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        self.min
    }

    /// Largest observation (zero when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// An approximate quantile (bucket upper bound); `q` in `[0, 1]`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((self.count as f64) * q).ceil() as u64;
        let mut seen = 0;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target {
                return if i == 0 { 0 } else { 1u64 << i };
            }
        }
        self.max
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = match (self.min, other.min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_peak() {
        let mut c = Counter::default();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
        let mut p = Peak::default();
        p.observe(3);
        p.observe(1);
        p.observe(7);
        p.observe(2);
        assert_eq!(p.get(), 7);
    }

    #[test]
    fn histogram_basic_stats() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 4, 8] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 15);
        assert_eq!(h.mean(), Some(3.75));
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), 8);
    }

    #[test]
    fn histogram_zero_and_quantiles() {
        let mut h = Histogram::new();
        h.record(0);
        for _ in 0..99 {
            h.record(100);
        }
        assert_eq!(h.min(), Some(0));
        // Median falls in the bucket containing 100 (2^7 = 128 upper bound).
        assert_eq!(h.quantile(0.5), 128);
        assert_eq!(h.quantile(0.0), 0);
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new();
        a.record(5);
        let mut b = Histogram::new();
        b.record(50);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.sum(), 55);
        assert_eq!(a.min(), Some(5));
        assert_eq!(a.max(), 50);
    }

    #[test]
    fn empty_histogram_is_sane() {
        let h = Histogram::new();
        assert_eq!(h.mean(), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.quantile(0.99), 0);
    }
}
