//! Simulated processes: OS threads coordinated by a strict-alternation baton.

use crate::engine::{Ctx, Shared, State};
use crate::time::{SimDuration, SimTime};
use crate::waker::Waker;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Identifier of a simulated process (dense index, spawn order).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProcId(pub(crate) usize);

impl ProcId {
    /// Dense index of this process (spawn order).
    pub fn index(self) -> usize {
        self.0
    }
}

#[derive(Debug)]
pub(crate) enum ProcStatus {
    Running,
    Parked,
    Done,
}

pub(crate) enum ResumeSignal {
    Go(SimTime),
    Abort,
}

pub(crate) enum YieldMsg {
    Parked { proc_id: ProcId, note: &'static str },
    Done { proc_id: ProcId },
    Panicked { proc_id: ProcId, message: String },
}

pub(crate) struct ProcSlot {
    pub name: String,
    pub status: ProcStatus,
    pub resume_pending: bool,
    /// Last park note; `&'static str` so the park hot path allocates
    /// nothing (deadlock diagnostics copy it into `String`s on failure).
    pub park_note: &'static str,
}

/// Payload used to unwind a process thread when the kernel aborts the run;
/// recognized and swallowed by the thread wrapper.
struct AbortToken;

/// Handle a process body uses to interact with the simulation.
///
/// All world access goes through [`ProcCtx::with`]; time passes only through
/// [`ProcCtx::advance`] or by blocking in [`ProcCtx::park`] until a
/// [`Waker`] fires.
pub struct ProcCtx<W: Send + 'static> {
    id: ProcId,
    name: String,
    shared: Arc<Shared<W>>,
    resume_rx: Receiver<ResumeSignal>,
    yield_tx: Sender<YieldMsg>,
    local_now: SimTime,
}

impl<W: Send + 'static> ProcCtx<W> {
    pub(crate) fn new(
        id: ProcId,
        name: String,
        shared: Arc<Shared<W>>,
        resume_rx: Receiver<ResumeSignal>,
        yield_tx: Sender<YieldMsg>,
    ) -> Self {
        ProcCtx {
            id,
            name,
            shared,
            resume_rx,
            yield_tx,
            local_now: SimTime::ZERO,
        }
    }

    /// This process's identifier.
    #[inline]
    pub fn id(&self) -> ProcId {
        self.id
    }

    /// The name given at spawn time.
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Current virtual time (equals the global clock whenever this process
    /// is running).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.local_now
    }

    /// A wake token other code (typically stored in the world) can use to
    /// unpark this process.
    #[inline]
    pub fn waker(&self) -> Waker {
        Waker { proc_id: self.id }
    }

    /// Runs `f` with exclusive access to the world and scheduler.
    /// The closure runs at the current instant and consumes no virtual time.
    pub fn with<R>(&self, f: impl FnOnce(&mut Ctx<'_, W>) -> R) -> R {
        let mut st = self.shared.lock();
        let State { world, sched } = &mut *st;
        debug_assert_eq!(
            sched.now, self.local_now,
            "process clock diverged from global clock"
        );
        f(&mut Ctx { world, sched })
    }

    /// Blocks until some [`Waker`] for this process fires. `note` is shown
    /// in deadlock diagnostics; it is a `&'static str` so parking performs
    /// no allocation (this is the hottest handoff path in the simulator).
    /// Wakes may be spurious; callers re-check their condition in a loop.
    pub fn park(&mut self, note: &'static str) {
        self.yield_tx
            .send(YieldMsg::Parked {
                proc_id: self.id,
                note,
            })
            // simlint: allow(no-panic-in-lib): the kernel outlives every process thread by construction (joined at shutdown)
            .expect("kernel gone while parking");
        self.block_for_resume();
    }

    /// Lets `dt` of virtual time pass for this process (models compute or
    /// software overhead). Other processes and fabric events run in the
    /// meantime.
    pub fn advance(&mut self, dt: SimDuration) {
        if dt == SimDuration::ZERO {
            return;
        }
        let wake_at = {
            let mut st = self.shared.lock();
            let t = st.sched.now + dt;
            // Directly schedule our own resume; bypass the pending check by
            // clearing it first (we are running, so no resume is pending...
            // unless a waker fired while we ran; that resume would arrive
            // early, which the loop below tolerates by re-parking).
            st.sched.clear_resume_pending(self.id);
            st.sched.wake_at(self.id, t);
            t
        };
        loop {
            self.yield_tx
                .send(YieldMsg::Parked {
                    proc_id: self.id,
                    note: "advancing clock",
                })
                // simlint: allow(no-panic-in-lib): same kernel-lifetime invariant as parking
                .expect("kernel gone while advancing");
            self.block_for_resume();
            if self.local_now >= wake_at {
                break;
            }
            // Spurious early wake (a waker fired during our slice): park
            // again; our own resume is still queued.
        }
    }

    fn block_for_resume(&mut self) {
        match self.resume_rx.recv() {
            Ok(ResumeSignal::Go(t)) => self.local_now = t,
            Ok(ResumeSignal::Abort) | Err(_) => {
                std::panic::panic_any(AbortToken);
            }
        }
    }
}

/// Installs (once, process-wide) a panic hook that silences the
/// [`AbortToken`] unwind used to tear down simulation threads.
fn install_quiet_abort_hook() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().is::<AbortToken>() {
                return; // silent: deliberate teardown
            }
            prev(info);
        }));
    });
}

pub(crate) fn spawn_proc<W: Send + 'static>(
    mut ctx: ProcCtx<W>,
    body: impl FnOnce(ProcCtx<W>) + Send + 'static,
) -> JoinHandle<()> {
    install_quiet_abort_hook();
    let name = ctx.name.clone();
    std::thread::Builder::new()
        .name(name)
        .spawn(move || {
            // Wait for the first resume before running user code.
            match ctx.resume_rx.recv() {
                Ok(ResumeSignal::Go(t)) => ctx.local_now = t,
                Ok(ResumeSignal::Abort) | Err(_) => return,
            }
            let id = ctx.id;
            let yield_tx = ctx.yield_tx.clone();
            let result = catch_unwind(AssertUnwindSafe(move || body(ctx)));
            match result {
                Ok(()) => {
                    let _ = yield_tx.send(YieldMsg::Done { proc_id: id });
                }
                Err(payload) => {
                    if payload.is::<AbortToken>() {
                        // Deliberate teardown: the kernel is no longer
                        // listening; exit silently.
                        return;
                    }
                    // `&*payload`, not `&payload`: the latter would unsize
                    // the Box itself into `dyn Any` and defeat downcasting.
                    let message = panic_message(&*payload);
                    let _ = yield_tx.send(YieldMsg::Panicked {
                        proc_id: id,
                        message,
                    });
                }
            }
        })
        // simlint: allow(no-panic-in-lib): thread spawn fails only on resource exhaustion, which the simulator cannot meaningfully recover from
        .expect("failed to spawn simulation thread")
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}
