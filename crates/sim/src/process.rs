//! Simulated processes: resumable state machines stepped by the poll loop.
//!
//! A process body is an `async` block — rustc compiles it into a stackless
//! coroutine whose suspension points are exactly the [`ProcCtx::park`] and
//! [`ProcCtx::advance`] awaits. Parking is therefore just "return
//! `Pending` after recording a note", and resuming is one `poll` call from
//! the executor ([`crate::Sim::run`]): no threads, no channels, no context
//! switches, for self-resume and cross-process handoff alike.

use crate::engine::{Ctx, Shared, State};
use crate::time::{SimDuration, SimTime};
use crate::waker::Waker;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll};

/// Identifier of a simulated process (dense index, spawn order).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProcId(pub(crate) usize);

impl ProcId {
    /// Dense index of this process (spawn order).
    pub fn index(self) -> usize {
        self.0
    }
}

#[derive(Debug)]
pub(crate) enum ProcStatus {
    Running,
    Parked,
    Done,
}

pub(crate) struct ProcSlot {
    pub name: String,
    pub status: ProcStatus,
    pub resume_pending: bool,
    /// Last park note; `&'static str` so the park hot path allocates
    /// nothing (deadlock diagnostics copy it into `String`s on failure).
    pub park_note: &'static str,
}

/// Handle a process body uses to interact with the simulation.
///
/// All world access goes through [`ProcCtx::with`]; time passes only through
/// [`ProcCtx::advance`] or by suspending in [`ProcCtx::park`] until a
/// [`Waker`] fires.
pub struct ProcCtx<W: 'static> {
    id: ProcId,
    name: String,
    shared: Rc<Shared<W>>,
    local_now: SimTime,
}

impl<W: 'static> ProcCtx<W> {
    pub(crate) fn new(id: ProcId, name: String, shared: Rc<Shared<W>>) -> Self {
        // A process spawned mid-run starts at the instant of its spawn;
        // its first resume event carries the same timestamp.
        let local_now = shared.lock().sched.now;
        ProcCtx {
            id,
            name,
            shared,
            local_now,
        }
    }

    /// This process's identifier.
    #[inline]
    pub fn id(&self) -> ProcId {
        self.id
    }

    /// The name given at spawn time.
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Current virtual time (equals the global clock whenever this process
    /// is running).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.local_now
    }

    /// A wake token other code (typically stored in the world) can use to
    /// unpark this process.
    #[inline]
    pub fn waker(&self) -> Waker {
        Waker { proc_id: self.id }
    }

    /// Runs `f` with exclusive access to the world and scheduler.
    /// The closure runs at the current instant and consumes no virtual time.
    pub fn with<R>(&self, f: impl FnOnce(&mut Ctx<'_, W>) -> R) -> R {
        let mut st = self.shared.lock();
        let State { world, sched } = &mut *st;
        debug_assert_eq!(
            sched.now, self.local_now,
            "process clock diverged from global clock"
        );
        f(&mut Ctx { world, sched })
    }

    /// Suspends until some [`Waker`] for this process fires. `note` is
    /// shown in deadlock diagnostics; it is a `&'static str` so parking
    /// performs no allocation (this is the hottest handoff path in the
    /// simulator). Wakes may be spurious; callers re-check their condition
    /// in a loop.
    pub fn park(&mut self, note: &'static str) -> impl Future<Output = ()> + '_ {
        Park {
            proc: self,
            note,
            yielded: false,
        }
    }

    /// Lets `dt` of virtual time pass for this process (models compute or
    /// software overhead). Other processes and fabric events run in the
    /// meantime. Whether the next resume is this process again (self-resume)
    /// or a peer, the cost is identical: one heap push/pop and one poll.
    pub fn advance(&mut self, dt: SimDuration) -> impl Future<Output = ()> + '_ {
        Advance {
            proc: self,
            dt,
            wake_at: None,
        }
    }
}

/// Future behind [`ProcCtx::park`]: first poll records the park note and
/// suspends; the next poll (the executor dispatched a `Resume` event for
/// this process) syncs the local clock and completes.
struct Park<'a, W: 'static> {
    proc: &'a mut ProcCtx<W>,
    note: &'static str,
    yielded: bool,
}

impl<W> Future for Park<'_, W> {
    type Output = ();

    fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<()> {
        let this = self.get_mut();
        if !this.yielded {
            this.yielded = true;
            let mut st = this.proc.shared.lock();
            let slot = &mut st.sched.procs[this.proc.id.0];
            slot.status = ProcStatus::Parked;
            slot.park_note = this.note;
            Poll::Pending
        } else {
            let st = this.proc.shared.lock();
            this.proc.local_now = st.sched.now;
            Poll::Ready(())
        }
    }
}

/// Future behind [`ProcCtx::advance`]: the first poll schedules this
/// process's own wake at `now + dt` and suspends; later polls complete once
/// the clock reached the wake time, re-parking on spurious early resumes
/// (a waker that fired during the process's last slice).
struct Advance<'a, W: 'static> {
    proc: &'a mut ProcCtx<W>,
    dt: SimDuration,
    wake_at: Option<SimTime>,
}

impl<W> Future for Advance<'_, W> {
    type Output = ();

    fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<()> {
        let this = self.get_mut();
        match this.wake_at {
            None => {
                if this.dt == SimDuration::ZERO {
                    return Poll::Ready(());
                }
                // We are running, so `local_now` equals the global clock
                // (the same invariant `with` debug-asserts).
                let wake_at = this.proc.local_now + this.dt;
                this.wake_at = Some(wake_at);
                let mut st = this.proc.shared.lock();
                // No resume of ours can be pending while we run — except a
                // waker that fired during this slice; clearing the marker
                // lets `wake_at` schedule unconditionally, and the stale
                // early resume (if any) is absorbed by the re-park arm
                // below.
                st.sched.clear_resume_pending(this.proc.id);
                st.sched.wake_at(this.proc.id, wake_at);
                let slot = &mut st.sched.procs[this.proc.id.0];
                slot.status = ProcStatus::Parked;
                slot.park_note = "advancing clock";
                Poll::Pending
            }
            Some(wake_at) => {
                let mut st = this.proc.shared.lock();
                let now = st.sched.now;
                if now < wake_at {
                    // Spurious early wake (a stale resume sorted first):
                    // re-park; our own scheduled resume is still queued.
                    let slot = &mut st.sched.procs[this.proc.id.0];
                    slot.status = ProcStatus::Parked;
                    slot.park_note = "advancing clock";
                    Poll::Pending
                } else {
                    drop(st);
                    this.proc.local_now = now;
                    Poll::Ready(())
                }
            }
        }
    }
}
