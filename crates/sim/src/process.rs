//! Simulated processes: OS threads coordinated by a strict-alternation
//! baton that is handed directly from process to process.
//!
//! A yielding process steps the scheduler itself ([`ProcCtx::yield_and_step`]):
//! it marks itself parked, drains ready events, and routes the next resume
//! under one state-lock acquisition. The kernel thread is involved only at
//! the ends of a run (bootstrap and terminal conditions).

use crate::engine::{Ctx, Routed, Shared, State};
use crate::time::{SimDuration, SimTime};
use crate::waker::Waker;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Identifier of a simulated process (dense index, spawn order).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProcId(pub(crate) usize);

impl ProcId {
    /// Dense index of this process (spawn order).
    pub fn index(self) -> usize {
        self.0
    }
}

#[derive(Debug)]
pub(crate) enum ProcStatus {
    Running,
    Parked,
    Done,
}

pub(crate) enum ResumeSignal {
    Go(SimTime),
    Abort,
}

/// Terminal conditions reported to the kernel thread. This is everything
/// left of the old per-handoff yield protocol: park/done bookkeeping is
/// now written directly into the shared state by the yielding process, so
/// the kernel hears only about events that end the run.
pub(crate) enum KernelMsg {
    /// The event queue drained while the sender held the baton; the kernel
    /// decides clean completion vs deadlock from the park table.
    QueueEmpty,
    /// The configured event ceiling was reached.
    EventLimit { events: u64, at: SimTime },
    /// Virtual time passed the configured horizon.
    TimeLimit { at: SimTime },
    /// A process panicked (or its thread died) while holding the baton.
    Panicked { proc_id: ProcId, message: String },
}

pub(crate) struct ProcSlot {
    pub name: String,
    pub status: ProcStatus,
    pub resume_pending: bool,
    /// Last park note; `&'static str` so the park hot path allocates
    /// nothing (deadlock diagnostics copy it into `String`s on failure).
    pub park_note: &'static str,
}

/// Payload used to unwind a process thread when the kernel aborts the run;
/// recognized and swallowed by the thread wrapper.
struct AbortToken;

/// Handle a process body uses to interact with the simulation.
///
/// All world access goes through [`ProcCtx::with`]; time passes only through
/// [`ProcCtx::advance`] or by blocking in [`ProcCtx::park`] until a
/// [`Waker`] fires.
pub struct ProcCtx<W: Send + 'static> {
    id: ProcId,
    name: String,
    shared: Arc<Shared<W>>,
    resume_rx: Receiver<ResumeSignal>,
    yield_tx: Sender<KernelMsg>,
    local_now: SimTime,
}

impl<W: Send + 'static> ProcCtx<W> {
    pub(crate) fn new(
        id: ProcId,
        name: String,
        shared: Arc<Shared<W>>,
        resume_rx: Receiver<ResumeSignal>,
        yield_tx: Sender<KernelMsg>,
    ) -> Self {
        ProcCtx {
            id,
            name,
            shared,
            resume_rx,
            yield_tx,
            local_now: SimTime::ZERO,
        }
    }

    /// This process's identifier.
    #[inline]
    pub fn id(&self) -> ProcId {
        self.id
    }

    /// The name given at spawn time.
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Current virtual time (equals the global clock whenever this process
    /// is running).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.local_now
    }

    /// A wake token other code (typically stored in the world) can use to
    /// unpark this process.
    #[inline]
    pub fn waker(&self) -> Waker {
        Waker { proc_id: self.id }
    }

    /// Runs `f` with exclusive access to the world and scheduler.
    /// The closure runs at the current instant and consumes no virtual time.
    pub fn with<R>(&self, f: impl FnOnce(&mut Ctx<'_, W>) -> R) -> R {
        let mut st = self.shared.lock();
        let State { world, sched } = &mut *st;
        debug_assert_eq!(
            sched.now, self.local_now,
            "process clock diverged from global clock"
        );
        f(&mut Ctx { world, sched })
    }

    /// Blocks until some [`Waker`] for this process fires. `note` is shown
    /// in deadlock diagnostics; it is a `&'static str` so parking performs
    /// no allocation (this is the hottest handoff path in the simulator).
    /// Wakes may be spurious; callers re-check their condition in a loop.
    pub fn park(&mut self, note: &'static str) {
        self.yield_and_step(note, None);
    }

    /// Lets `dt` of virtual time pass for this process (models compute or
    /// software overhead). Other processes and fabric events run in the
    /// meantime. When this process is the only runnable one, the resume
    /// comes straight back via the self-resume fast path and the call is
    /// just a lock acquisition plus a heap push/pop — no context switch.
    pub fn advance(&mut self, dt: SimDuration) {
        if dt == SimDuration::ZERO {
            return;
        }
        // We are running, so `local_now` equals the global clock (the same
        // invariant `with` debug-asserts); the wake time needs no lock.
        let wake_at = self.local_now + dt;
        self.yield_and_step("advancing clock", Some(wake_at));
        while self.local_now < wake_at {
            // Spurious early wake (a waker fired during our last slice and
            // its stale resume sorted first): re-park; our own scheduled
            // resume is still queued.
            self.yield_and_step("advancing clock", None);
        }
    }

    /// Parks this process and steps the scheduler inline — the heart of
    /// the direct-handoff execution model. Under one state-lock
    /// acquisition this (optionally) schedules the process's own wake at
    /// `self_wake_at`, records the park status and note, drains ready
    /// `Call` events, and routes the next `Resume`: to itself (fast path —
    /// return immediately and keep running, zero channel operations), to a
    /// peer process (one direct channel send, then block), or — on a
    /// terminal condition — to the kernel thread via the yield channel.
    /// Returns with `local_now` current once this process holds the baton
    /// again.
    fn yield_and_step(&mut self, note: &'static str, self_wake_at: Option<SimTime>) {
        let routed = {
            let mut st = self.shared.lock();
            if let Some(t) = self_wake_at {
                // No resume of ours can be pending while we run — except a
                // waker that fired during this slice; clearing the marker
                // lets `wake_at` schedule unconditionally, and the stale
                // early resume (if any) is absorbed by `advance`'s re-park
                // loop.
                st.sched.clear_resume_pending(self.id);
                st.sched.wake_at(self.id, t);
            }
            {
                let slot = &mut st.sched.procs[self.id.0];
                slot.status = ProcStatus::Parked;
                slot.park_note = note;
            }
            let State { world, sched } = &mut *st;
            sched.route_baton(world, &self.shared.config, Some(self.id))
        };
        match routed {
            Routed::SelfResume(t) => self.local_now = t,
            Routed::BatonSent(_) => self.block_for_resume(),
            Routed::PeerDied(p) => {
                self.notify_kernel(KernelMsg::Panicked {
                    proc_id: p,
                    message: "process thread exited unexpectedly".into(),
                });
                self.block_for_resume();
            }
            Routed::Terminal(msg) => {
                self.notify_kernel(msg);
                // The kernel resolves the run; the only signal that can
                // arrive here is the teardown abort.
                self.block_for_resume();
            }
        }
    }

    fn notify_kernel(&self, msg: KernelMsg) {
        self.yield_tx
            .send(msg)
            // simlint: allow(no-panic-in-lib): the kernel outlives every process thread by construction (joined at shutdown)
            .expect("kernel gone while yielding");
    }

    fn block_for_resume(&mut self) {
        match self.resume_rx.recv() {
            Ok(ResumeSignal::Go(t)) => self.local_now = t,
            Ok(ResumeSignal::Abort) | Err(_) => {
                std::panic::panic_any(AbortToken);
            }
        }
    }
}

/// Installs (once, process-wide) a panic hook that silences the
/// [`AbortToken`] unwind used to tear down simulation threads.
fn install_quiet_abort_hook() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().is::<AbortToken>() {
                return; // silent: deliberate teardown
            }
            prev(info);
        }));
    });
}

pub(crate) fn spawn_proc<W: Send + 'static>(
    mut ctx: ProcCtx<W>,
    body: impl FnOnce(ProcCtx<W>) + Send + 'static,
) -> JoinHandle<()> {
    install_quiet_abort_hook();
    let name = ctx.name.clone();
    std::thread::Builder::new()
        .name(name)
        .spawn(move || {
            // Wait for the first resume before running user code.
            match ctx.resume_rx.recv() {
                Ok(ResumeSignal::Go(t)) => ctx.local_now = t,
                Ok(ResumeSignal::Abort) | Err(_) => return,
            }
            let id = ctx.id;
            let yield_tx = ctx.yield_tx.clone();
            let shared = Arc::clone(&ctx.shared);
            let result = catch_unwind(AssertUnwindSafe(move || body(ctx)));
            match result {
                Ok(()) => {
                    // The finishing process still holds the baton: mark
                    // itself done and route the baton onward directly, so
                    // the kernel thread stays asleep unless this was the
                    // last act of the run.
                    let routed = {
                        let mut st = shared.lock();
                        st.sched.procs[id.0].status = ProcStatus::Done;
                        let State { world, sched } = &mut *st;
                        sched.route_baton(world, &shared.config, Some(id))
                    };
                    match routed {
                        Routed::BatonSent(_) => {}
                        Routed::PeerDied(p) => {
                            let _ = yield_tx.send(KernelMsg::Panicked {
                                proc_id: p,
                                message: "process thread exited unexpectedly".into(),
                            });
                        }
                        Routed::Terminal(msg) => {
                            let _ = yield_tx.send(msg);
                        }
                        Routed::SelfResume(_) => {
                            // Unreachable: `drain_calls` skips resumes for
                            // `Done` processes, so the baton cannot come
                            // back here. Fail the run loudly rather than
                            // hanging if the invariant ever breaks.
                            debug_assert!(false, "baton routed to a finished process");
                            let _ = yield_tx.send(KernelMsg::Panicked {
                                proc_id: id,
                                message: "baton routed to a finished process".into(),
                            });
                        }
                    }
                }
                Err(payload) => {
                    if payload.is::<AbortToken>() {
                        // Deliberate teardown: the kernel is no longer
                        // listening; exit silently.
                        return;
                    }
                    // `&*payload`, not `&payload`: the latter would unsize
                    // the Box itself into `dyn Any` and defeat downcasting.
                    let message = panic_message(&*payload);
                    let _ = yield_tx.send(KernelMsg::Panicked {
                        proc_id: id,
                        message,
                    });
                }
            }
        })
        // simlint: allow(no-panic-in-lib): thread spawn fails only on resource exhaustion, which the simulator cannot meaningfully recover from
        .expect("failed to spawn simulation thread")
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}
