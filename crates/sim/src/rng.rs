//! Deterministic random number generation, implemented in-repo.
//!
//! Every stochastic element of a simulation (workload contents, key
//! distributions) derives from an explicit `(seed, stream)` pair so that
//! runs are bit-reproducible across schemes — the paper's comparisons are
//! between flow control schemes under *identical* workloads.
//!
//! The generator is **xoshiro256\*\*** (Blackman & Vigna), seeded through
//! SplitMix64 over the `(seed, stream)` pair. Both algorithms are public
//! domain and small enough to carry in-tree, which keeps the build hermetic:
//! no registry crate is needed to reproduce the paper's workloads, and the
//! exact byte stream behind every published number is pinned by this file
//! rather than by an external crate version.

/// A deterministic xoshiro256\*\* generator.
///
/// Construct via [`det_rng`]; all simulation randomness must flow through a
/// `(seed, stream)` pair so results stay reproducible.
#[derive(Clone, Debug)]
pub struct DetRng {
    s: [u64; 4],
}

/// Builds a deterministic RNG for `(seed, stream)`.
///
/// Different streams from the same seed are statistically independent; the
/// mixing is SplitMix64 over the pair, feeding the xoshiro256\*\* state.
pub fn det_rng(seed: u64, stream: u64) -> DetRng {
    let mut state = seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let mut s = [0u64; 4];
    for word in &mut s {
        *word = splitmix64(&mut state);
    }
    // xoshiro256** is ill-defined on the all-zero state; SplitMix64 cannot
    // produce four zero outputs in a row, but guard anyway.
    if s == [0; 4] {
        s[0] = 0x9E37_79B9_7F4A_7C15;
    }
    DetRng { s }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl DetRng {
    /// The raw xoshiro256\*\* state words, for checkpointing. Restoring
    /// via [`DetRng::from_state`] continues the stream exactly where this
    /// generator left off.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from state words captured by
    /// [`DetRng::state`].
    ///
    /// # Panics
    /// Panics on the all-zero state, which xoshiro256\*\* cannot occupy;
    /// a zero snapshot means the bytes were corrupted.
    pub fn from_state(s: [u64; 4]) -> DetRng {
        assert!(s != [0; 4], "all-zero xoshiro256** state");
        DetRng { s }
    }

    /// Next 64 uniformly distributed bits.
    pub fn gen_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn gen_f64(&mut self) -> f64 {
        (self.gen_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Uniform value in the half-open range `lo..hi` (`hi` exclusive).
    /// Panics if the range is empty.
    pub fn gen_range<T: SampleRange>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample(self, range.start, range.end)
    }

    /// Uniform `u64` in `[0, n)` via Lemire's multiply-shift with rejection
    /// (unbiased). Panics if `n == 0`.
    pub fn gen_u64_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "gen_u64_below(0)");
        let threshold = n.wrapping_neg() % n;
        loop {
            let m = (self.gen_u64() as u128) * (n as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }
}

/// Types that [`DetRng::gen_range`] can sample uniformly from a half-open
/// range.
pub trait SampleRange: Sized {
    /// Uniform sample from `lo..hi`; panics on an empty range.
    fn sample(rng: &mut DetRng, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uint {
    ($($t:ty),*) => {$(
        impl SampleRange for $t {
            fn sample(rng: &mut DetRng, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty range in gen_range");
                lo + rng.gen_u64_below((hi - lo) as u64) as $t
            }
        }
    )*};
}
impl_sample_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleRange for $t {
            fn sample(rng: &mut DetRng, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u64;
                (lo as i128 + rng.gen_u64_below(span) as i128) as $t
            }
        }
    )*};
}
impl_sample_int!(i8, i16, i32, i64, isize);

impl SampleRange for f64 {
    fn sample(rng: &mut DetRng, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "empty range in gen_range");
        let v = lo + rng.gen_f64() * (hi - lo);
        // Rounding can land exactly on `hi`; fold back inside the range.
        if v >= hi {
            lo.max(hi - (hi - lo) * f64::EPSILON)
        } else {
            v
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_pair_same_stream() {
        let mut a = det_rng(42, 7);
        let mut b = det_rng(42, 7);
        let xs: Vec<u64> = (0..64).map(|_| a.gen_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.gen_u64()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_streams_diverge() {
        let mut a = det_rng(42, 0);
        let mut b = det_rng(42, 1);
        let xs: Vec<u64> = (0..16).map(|_| a.gen_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = det_rng(1, 0);
        let mut b = det_rng(2, 0);
        assert_ne!(a.gen_u64(), b.gen_u64());
    }

    #[test]
    fn stream_is_pinned() {
        // The exact output is part of the repo's reproducibility contract:
        // published figures derive from these bytes. If this test breaks,
        // every golden snapshot breaks with it — change both deliberately.
        let mut r = det_rng(0, 0);
        let first: Vec<u64> = (0..4).map(|_| r.gen_u64()).collect();
        let again: Vec<u64> = {
            let mut r2 = det_rng(0, 0);
            (0..4).map(|_| r2.gen_u64()).collect()
        };
        assert_eq!(first, again);
        // Spot-check against an independent evaluation of
        // splitmix64-seeded xoshiro256**.
        let mut state = 0u64;
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = splitmix64(&mut state);
        }
        let expected = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        assert_eq!(first[0], expected);
    }

    #[test]
    fn gen_range_respects_integer_bounds() {
        let mut r = det_rng(7, 7);
        for _ in 0..2000 {
            let v = r.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = r.gen_range(0u32..1);
            assert_eq!(w, 0);
            let s = r.gen_range(-5i64..6);
            assert!((-5..6).contains(&s));
        }
    }

    #[test]
    fn gen_range_hits_every_value_of_a_small_range() {
        let mut r = det_rng(11, 0);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.gen_range(0usize..8)] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "some value never sampled: {seen:?}"
        );
    }

    #[test]
    fn gen_range_respects_float_bounds() {
        let mut r = det_rng(13, 99);
        for _ in 0..2000 {
            let v = r.gen_range(-0.45..0.45);
            assert!((-0.45..0.45).contains(&v), "{v}");
        }
    }

    #[test]
    fn gen_f64_is_unit_interval_and_roughly_uniform() {
        let mut r = det_rng(5, 5);
        let n = 20_000;
        let mut sum = 0.0;
        let mut buckets = [0u32; 10];
        for _ in 0..n {
            let v = r.gen_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
            buckets[(v * 10.0) as usize] += 1;
        }
        let mean = sum / n as f64;
        assert!((0.48..0.52).contains(&mean), "mean {mean} off-center");
        for (i, &b) in buckets.iter().enumerate() {
            let frac = b as f64 / n as f64;
            assert!((0.08..0.12).contains(&frac), "bucket {i} holds {frac}");
        }
    }

    #[test]
    fn gen_u64_bits_are_balanced() {
        // Each of the 64 bit positions should be set ~half the time.
        let mut r = det_rng(1234, 1);
        let n = 8192;
        let mut counts = [0u32; 64];
        for _ in 0..n {
            let v = r.gen_u64();
            for (bit, c) in counts.iter_mut().enumerate() {
                *c += ((v >> bit) & 1) as u32;
            }
        }
        for (bit, &c) in counts.iter().enumerate() {
            let frac = c as f64 / n as f64;
            assert!((0.45..0.55).contains(&frac), "bit {bit} frac {frac}");
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = det_rng(77, 0);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "{hits} hits for p=0.25");
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.1));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        det_rng(0, 0).gen_range(5u32..5);
    }

    #[test]
    fn state_roundtrip_continues_the_stream() {
        let mut a = det_rng(42, 9);
        for _ in 0..17 {
            a.gen_u64();
        }
        let mut b = DetRng::from_state(a.state());
        let xs: Vec<u64> = (0..32).map(|_| a.gen_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.gen_u64()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    #[should_panic(expected = "all-zero")]
    fn zero_state_is_rejected() {
        let _ = DetRng::from_state([0; 4]);
    }
}
