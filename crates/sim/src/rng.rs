//! Deterministic random number generation helpers.
//!
//! Every stochastic element of a simulation (workload contents, key
//! distributions) derives from an explicit `(seed, stream)` pair so that
//! runs are bit-reproducible across schemes — the paper's comparisons are
//! between flow control schemes under *identical* workloads.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Builds a deterministic RNG for `(seed, stream)`.
///
/// Different streams from the same seed are statistically independent; the
/// mixing is SplitMix64 over the pair, feeding a [`StdRng`].
pub fn det_rng(seed: u64, stream: u64) -> StdRng {
    let mut state = seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let mut key = [0u8; 32];
    for chunk in key.chunks_mut(8) {
        state = splitmix64(&mut state);
        chunk.copy_from_slice(&state.to_le_bytes());
    }
    StdRng::from_seed(key)
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_pair_same_stream() {
        let mut a = det_rng(42, 7);
        let mut b = det_rng(42, 7);
        let xs: Vec<u64> = (0..16).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_streams_diverge() {
        let mut a = det_rng(42, 0);
        let mut b = det_rng(42, 1);
        let xs: Vec<u64> = (0..16).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = det_rng(1, 0);
        let mut b = det_rng(2, 0);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }
}
