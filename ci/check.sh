#!/usr/bin/env bash
# Local mirror of .github/workflows/ci.yml — run before pushing.
#
# The workspace is hermetic (path-only dependencies), so everything runs
# with --locked --offline; a step that needs the network is a bug.
#
# The `ci_parity` test (tests/ci_parity.rs) asserts every cargo
# invocation here also appears in ci.yml and vice versa — edit both
# files together.
set -euo pipefail
cd "$(dirname "$0")/.."

run() {
    echo "==> $*"
    "$@"
}

# Like run, but reports the step's wall time in milliseconds (used for
# the per-target smoke runs so throughput regressions are visible in the
# CI log; `$SECONDS` has 1-second resolution, useless for sub-second
# smoke targets).
timed() {
    echo "==> $*"
    local t0 t1
    t0=$(date +%s%N)
    "$@"
    t1=$(date +%s%N)
    echo "    took $(((t1 - t0) / 1000000))ms (wall)"
}

run cargo build --release --workspace --locked --offline
run cargo test -q --workspace --release --locked --offline
run cargo fmt --check
run cargo run --release -p simlint --locked --offline -- --stats --stats-json bench_results/simlint_stats.json
run cargo clippy --workspace --all-targets --locked --offline -- -D warnings
run cargo bench -p ibfabric --bench transport --locked --offline -- --test
run cargo bench -p ibflow-bench --bench paper --locked --offline -- --test
# The engine bench's --test mode enforces the committed throughput
# floors: the 1M events/s event-loop/handoff rates, and the 100k
# frames/s ring_poll floor guarding the RDMA channel's O(active)
# polling path.
run cargo bench -p ibflow-bench --bench engine --locked --offline -- --test

# Goldens must be byte-identical at every pool width: serial, moderate,
# and deliberately oversubscribed (mirrors the CI golden matrix).
for jobs in 1 4 16; do
    run env IBFLOW_JOBS=$jobs cargo test -q --release --locked --offline -p ibflow-bench --test golden
done

# Chaos battery at the fixed default seed: same-seed determinism across
# pool widths plus the golden counter snapshot.
run cargo test -q --release --locked --offline -p ibflow-bench --test chaos

# Checkpoint/restore matrix: the snapshot-kill-restore ladder must land
# byte-identically on its golden at serial and moderate pool widths
# (mirrors the CI ckpt-restore matrix).
for jobs in 1 4; do
    run env IBFLOW_JOBS=$jobs cargo test -q --release --locked --offline -p ibflow-bench --test ckpt
done

# Smoke: the two headline experiment binaries must complete cleanly with
# the pool engaged, and print how long each takes.
timed env IBFLOW_JOBS=4 cargo run --release --locked --offline -p ibflow-bench --bin fig2_latency >/dev/null
timed env IBFLOW_CLASS=test IBFLOW_JOBS=4 cargo run --release --locked --offline -p ibflow-bench --bin table1_ecm >/dev/null
timed env IBFLOW_JOBS=4 cargo run --release --locked --offline -p ibflow-bench --bin chaos >/dev/null
timed env IBFLOW_JOBS=4 cargo run --release --locked --offline -p ibflow-bench --bin ckpt >/dev/null

echo "All checks passed."
