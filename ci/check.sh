#!/usr/bin/env bash
# Local mirror of .github/workflows/ci.yml — run before pushing.
#
# The workspace is hermetic (path-only dependencies), so everything runs
# with --locked --offline; a step that needs the network is a bug.
set -euo pipefail
cd "$(dirname "$0")/.."

run() {
    echo "==> $*"
    "$@"
}

run cargo build --release --workspace --locked --offline
run cargo test -q --workspace --release --locked --offline
run cargo fmt --check
run cargo run --release -p simlint --locked --offline -- --stats
run cargo clippy --workspace --all-targets --locked --offline -- -D warnings
run cargo bench -p ibfabric --bench transport --locked --offline -- --test
run cargo bench -p ibflow-bench --bench paper --locked --offline -- --test

# Smoke: the two headline experiment binaries must complete cleanly.
run cargo run --release --locked --offline -p ibflow-bench --bin fig2_latency >/dev/null
run env IBFLOW_CLASS=test cargo run --release --locked --offline -p ibflow-bench --bin table1_ecm >/dev/null

echo "All checks passed."
