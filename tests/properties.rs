//! Property-based tests spanning the whole stack: arbitrary workloads
//! through the fabric + MPI layer must preserve MPI semantics under every
//! flow control scheme and configuration.
//!
//! Runs under the in-repo harness (`testutil::prop`): every failure prints
//! a base seed (`IBFLOW_PROP_SEED=...`) and a greedily minimized input.

use ibflow::ibfabric::FabricParams;
use ibflow::mpib::{CreditMsgMode, FlowControlScheme, GrowthPolicy, MpiConfig, MpiWorld};
use testutil::prop::{check, shrink, Case, Gen};

const CASES: u32 = 24;

const SCHEMES: [FlowControlScheme; 3] = [
    FlowControlScheme::Hardware,
    FlowControlScheme::UserStatic,
    FlowControlScheme::UserDynamic,
];

fn gen_scheme(g: &mut Gen) -> FlowControlScheme {
    SCHEMES[g.index(SCHEMES.len())]
}

/// Shrinks a scheme toward the front of [`SCHEMES`] (hardware first).
fn shrink_scheme(s: FlowControlScheme) -> Vec<FlowControlScheme> {
    let idx = SCHEMES.iter().position(|&x| x == s).expect("known scheme");
    SCHEMES[..idx].to_vec()
}

/// Any mix of message sizes (eager and rendezvous), sent in order on
/// one tag, arrives intact and in order — whatever the scheme,
/// pre-post depth, or credit path.
#[derive(Clone, Debug)]
struct IntegrityCase {
    sizes: Vec<usize>,
    scheme: FlowControlScheme,
    credit_mode: CreditMsgMode,
    prepost: u32,
    ecm_threshold: u32,
}

impl Case for IntegrityCase {
    fn generate(g: &mut Gen) -> Self {
        IntegrityCase {
            sizes: g.vec(1..25, |g| g.usize_in(0..6000)),
            scheme: gen_scheme(g),
            credit_mode: if g.bool() {
                CreditMsgMode::Optimistic
            } else {
                CreditMsgMode::Rdma
            },
            prepost: g.u32_in(1..12),
            ecm_threshold: g.u32_in(1..8),
        }
    }

    fn shrink(&self) -> Vec<Self> {
        let mut out: Vec<Self> = Vec::new();
        for sizes in shrink::vec_candidates(&self.sizes, 1, |&n| shrink::usize_toward(n, 0)) {
            out.push(IntegrityCase {
                sizes,
                ..self.clone()
            });
        }
        for scheme in shrink_scheme(self.scheme) {
            out.push(IntegrityCase {
                scheme,
                ..self.clone()
            });
        }
        if self.credit_mode == CreditMsgMode::Rdma {
            out.push(IntegrityCase {
                credit_mode: CreditMsgMode::Optimistic,
                ..self.clone()
            });
        }
        for prepost in shrink::u32_toward(self.prepost, 1) {
            out.push(IntegrityCase {
                prepost,
                ..self.clone()
            });
        }
        for ecm_threshold in shrink::u32_toward(self.ecm_threshold, 1) {
            out.push(IntegrityCase {
                ecm_threshold,
                ..self.clone()
            });
        }
        out
    }
}

#[test]
fn payload_integrity_and_ordering() {
    check(
        "payload_integrity_and_ordering",
        CASES,
        |c: &IntegrityCase| {
            let cfg = MpiConfig {
                credit_msg_mode: c.credit_mode,
                ecm_threshold: c.ecm_threshold,
                ..MpiConfig::scheme(c.scheme, c.prepost)
            };
            let sizes = c.sizes.clone();
            let out = MpiWorld::run(2, cfg, FabricParams::mt23108(), async move |mpi| {
                if mpi.rank() == 0 {
                    for (i, &n) in sizes.iter().enumerate() {
                        let payload: Vec<u8> = (0..n).map(|b| ((b + i) % 251) as u8).collect();
                        mpi.send(&payload, 1, 5).await;
                    }
                    true
                } else {
                    for (i, &n) in sizes.iter().enumerate() {
                        let (st, data) = mpi.recv(Some(0), Some(5)).await;
                        assert_eq!(st.len, n, "message {i} length");
                        for (b, &v) in data.iter().enumerate() {
                            assert_eq!(v, ((b + i) % 251) as u8, "message {i} byte {b}");
                        }
                    }
                    true
                }
            })
            .expect("run failed");
            assert!(out.results.iter().all(|&ok| ok));
        },
    );
}

/// Results and virtual end-times are bit-deterministic for a fixed
/// configuration.
#[derive(Clone, Debug)]
struct DeterminismCase {
    scheme: FlowControlScheme,
    prepost: u32,
    count: u32,
}

impl Case for DeterminismCase {
    fn generate(g: &mut Gen) -> Self {
        DeterminismCase {
            scheme: gen_scheme(g),
            prepost: g.u32_in(1..10),
            count: g.u32_in(1..30),
        }
    }

    fn shrink(&self) -> Vec<Self> {
        let mut out: Vec<Self> = Vec::new();
        for scheme in shrink_scheme(self.scheme) {
            out.push(DeterminismCase { scheme, ..*self });
        }
        for prepost in shrink::u32_toward(self.prepost, 1) {
            out.push(DeterminismCase { prepost, ..*self });
        }
        for count in shrink::u32_toward(self.count, 1) {
            out.push(DeterminismCase { count, ..*self });
        }
        out
    }
}

#[test]
fn determinism() {
    check("determinism", CASES, |c: &DeterminismCase| {
        let count = c.count;
        let run = || {
            let cfg = MpiConfig::scheme(c.scheme, c.prepost);
            MpiWorld::run(3, cfg, FabricParams::mt23108(), async move |mpi| {
                let me = mpi.rank();
                let next = (me + 1) % 3;
                let prev = (me + 2) % 3;
                let mut acc = me as u64;
                for i in 0..count {
                    let (_, d) = mpi
                        .sendrecv(
                            &acc.to_le_bytes(),
                            next,
                            i as i32,
                            Some(prev),
                            Some(i as i32),
                        )
                        .await;
                    acc = acc
                        .wrapping_mul(31)
                        .wrapping_add(u64::from_le_bytes(d.try_into().unwrap()));
                }
                acc
            })
            .expect("run failed")
        };
        let a = run();
        let b = run();
        assert_eq!(a.results, b.results);
        assert_eq!(a.end_time, b.end_time);
        assert_eq!(a.events, b.events);
    });
}

/// The flow control scheme never changes computed results, only
/// timing (the paper's comparisons rely on this).
#[derive(Clone, Debug)]
struct InvarianceCase {
    sizes: Vec<usize>,
    prepost: u32,
}

impl Case for InvarianceCase {
    fn generate(g: &mut Gen) -> Self {
        InvarianceCase {
            sizes: g.vec(1..12, |g| g.usize_in(1..4000)),
            prepost: g.u32_in(1..8),
        }
    }

    fn shrink(&self) -> Vec<Self> {
        let mut out: Vec<Self> = Vec::new();
        for sizes in shrink::vec_candidates(&self.sizes, 1, |&n| shrink::usize_toward(n, 1)) {
            out.push(InvarianceCase {
                sizes,
                ..self.clone()
            });
        }
        for prepost in shrink::u32_toward(self.prepost, 1) {
            out.push(InvarianceCase {
                prepost,
                ..self.clone()
            });
        }
        out
    }
}

#[test]
fn scheme_invariance() {
    check("scheme_invariance", CASES, |c: &InvarianceCase| {
        let mut sums = Vec::new();
        for scheme in SCHEMES {
            let sizes = c.sizes.clone();
            let out = MpiWorld::run(
                2,
                MpiConfig::scheme(scheme, c.prepost),
                FabricParams::mt23108(),
                async move |mpi| {
                    if mpi.rank() == 0 {
                        for &n in &sizes {
                            let payload: Vec<u8> = (0..n).map(|b| (b % 17) as u8).collect();
                            mpi.send(&payload, 1, 0).await;
                        }
                        0u64
                    } else {
                        let mut h = 0u64;
                        for _ in &sizes {
                            let (_, d) = mpi.recv(Some(0), Some(0)).await;
                            for v in d {
                                h = h.wrapping_mul(131).wrapping_add(v as u64);
                            }
                        }
                        h
                    }
                },
            )
            .expect("run failed");
            sums.push(out.results[1]);
        }
        assert_eq!(sums[0], sums[1]);
        assert_eq!(sums[1], sums[2]);
    });
}

/// The dynamic scheme's pool never exceeds the configured cap, for
/// any growth policy and pressure level.
#[derive(Clone, Debug)]
struct GrowthCase {
    burst: u32,
    increment: u32,
    exponential: bool,
    max_prepost: u32,
}

impl Case for GrowthCase {
    fn generate(g: &mut Gen) -> Self {
        GrowthCase {
            burst: g.u32_in(10..80),
            increment: g.u32_in(1..9),
            exponential: g.bool(),
            max_prepost: g.u32_in(4..24),
        }
    }

    fn shrink(&self) -> Vec<Self> {
        let mut out: Vec<Self> = Vec::new();
        for burst in shrink::u32_toward(self.burst, 10) {
            out.push(GrowthCase { burst, ..*self });
        }
        for increment in shrink::u32_toward(self.increment, 1) {
            out.push(GrowthCase { increment, ..*self });
        }
        for exponential in shrink::bool_toward_false(self.exponential) {
            out.push(GrowthCase {
                exponential,
                ..*self
            });
        }
        for max_prepost in shrink::u32_toward(self.max_prepost, 4) {
            out.push(GrowthCase {
                max_prepost,
                ..*self
            });
        }
        out
    }
}

#[test]
fn dynamic_growth_respects_cap() {
    check("dynamic_growth_respects_cap", CASES, |c: &GrowthCase| {
        let cfg = MpiConfig {
            growth: if c.exponential {
                GrowthPolicy::Exponential
            } else {
                GrowthPolicy::Linear(c.increment)
            },
            max_prepost: c.max_prepost,
            ..MpiConfig::scheme(FlowControlScheme::UserDynamic, 2)
        };
        let burst = c.burst;
        let out = MpiWorld::run(2, cfg, FabricParams::mt23108(), async move |mpi| {
            if mpi.rank() == 0 {
                let reqs: Vec<_> = (0..burst)
                    .map(|i| mpi.isend(&i.to_le_bytes(), 1, 0))
                    .collect();
                mpi.waitall(&reqs).await;
            } else {
                mpi.compute(ibflow::ibsim::SimDuration::millis(1)).await;
                for _ in 0..burst {
                    let _ = mpi.recv(Some(0), Some(0)).await;
                }
            }
        })
        .expect("run failed");
        let peak = out.stats.max_posted_buffers();
        assert!(
            peak <= c.max_prepost as u64,
            "peak {peak} exceeds cap {}",
            c.max_prepost
        );
    });
}
