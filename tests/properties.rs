//! Property-based tests spanning the whole stack: arbitrary workloads
//! through the fabric + MPI layer must preserve MPI semantics under every
//! flow control scheme and configuration.

use ibflow::ibfabric::FabricParams;
use ibflow::mpib::{CreditMsgMode, FlowControlScheme, GrowthPolicy, MpiConfig, MpiWorld};
use proptest::prelude::*;

fn scheme_strategy() -> impl Strategy<Value = FlowControlScheme> {
    prop_oneof![
        Just(FlowControlScheme::Hardware),
        Just(FlowControlScheme::UserStatic),
        Just(FlowControlScheme::UserDynamic),
    ]
}

fn credit_mode_strategy() -> impl Strategy<Value = CreditMsgMode> {
    prop_oneof![Just(CreditMsgMode::Optimistic), Just(CreditMsgMode::Rdma)]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Any mix of message sizes (eager and rendezvous), sent in order on
    /// one tag, arrives intact and in order — whatever the scheme,
    /// pre-post depth, or credit path.
    #[test]
    fn payload_integrity_and_ordering(
        sizes in prop::collection::vec(0usize..6000, 1..25),
        scheme in scheme_strategy(),
        credit_mode in credit_mode_strategy(),
        prepost in 1u32..12,
        ecm_threshold in 1u32..8,
    ) {
        let cfg = MpiConfig {
            credit_msg_mode: credit_mode,
            ecm_threshold,
            ..MpiConfig::scheme(scheme, prepost)
        };
        let sizes2 = sizes.clone();
        let out = MpiWorld::run(2, cfg, FabricParams::mt23108(), move |mpi| {
            if mpi.rank() == 0 {
                for (i, &n) in sizes2.iter().enumerate() {
                    let payload: Vec<u8> = (0..n).map(|b| ((b + i) % 251) as u8).collect();
                    mpi.send(&payload, 1, 5);
                }
                true
            } else {
                for (i, &n) in sizes2.iter().enumerate() {
                    let (st, data) = mpi.recv(Some(0), Some(5));
                    assert_eq!(st.len, n, "message {i} length");
                    for (b, &v) in data.iter().enumerate() {
                        assert_eq!(v, ((b + i) % 251) as u8, "message {i} byte {b}");
                    }
                }
                true
            }
        })
        .expect("run failed");
        prop_assert!(out.results.iter().all(|&ok| ok));
    }

    /// Results and virtual end-times are bit-deterministic for a fixed
    /// configuration.
    #[test]
    fn determinism(
        scheme in scheme_strategy(),
        prepost in 1u32..10,
        count in 1u32..30,
    ) {
        let run = || {
            let cfg = MpiConfig::scheme(scheme, prepost);
            MpiWorld::run(3, cfg, FabricParams::mt23108(), move |mpi| {
                let me = mpi.rank();
                let next = (me + 1) % 3;
                let prev = (me + 2) % 3;
                let mut acc = me as u64;
                for i in 0..count {
                    let (_, d) = mpi.sendrecv(&acc.to_le_bytes(), next, i as i32, Some(prev), Some(i as i32));
                    acc = acc.wrapping_mul(31).wrapping_add(u64::from_le_bytes(d.try_into().unwrap()));
                }
                acc
            })
            .expect("run failed")
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a.results, b.results);
        prop_assert_eq!(a.end_time, b.end_time);
        prop_assert_eq!(a.events, b.events);
    }

    /// The flow control scheme never changes computed results, only
    /// timing (the paper's comparisons rely on this).
    #[test]
    fn scheme_invariance(
        sizes in prop::collection::vec(1usize..4000, 1..12),
        prepost in 1u32..8,
    ) {
        let mut sums = Vec::new();
        for scheme in [
            FlowControlScheme::Hardware,
            FlowControlScheme::UserStatic,
            FlowControlScheme::UserDynamic,
        ] {
            let sizes2 = sizes.clone();
            let out = MpiWorld::run(2, MpiConfig::scheme(scheme, prepost), FabricParams::mt23108(), move |mpi| {
                if mpi.rank() == 0 {
                    for &n in &sizes2 {
                        let payload: Vec<u8> = (0..n).map(|b| (b % 17) as u8).collect();
                        mpi.send(&payload, 1, 0);
                    }
                    0u64
                } else {
                    let mut h = 0u64;
                    for _ in &sizes2 {
                        let (_, d) = mpi.recv(Some(0), Some(0));
                        for v in d {
                            h = h.wrapping_mul(131).wrapping_add(v as u64);
                        }
                    }
                    h
                }
            })
            .expect("run failed");
            sums.push(out.results[1]);
        }
        prop_assert_eq!(sums[0], sums[1]);
        prop_assert_eq!(sums[1], sums[2]);
    }

    /// The dynamic scheme's pool never exceeds the configured cap, for
    /// any growth policy and pressure level.
    #[test]
    fn dynamic_growth_respects_cap(
        burst in 10u32..80,
        increment in 1u32..9,
        exponential in any::<bool>(),
        max_prepost in 4u32..24,
    ) {
        let cfg = MpiConfig {
            growth: if exponential { GrowthPolicy::Exponential } else { GrowthPolicy::Linear(increment) },
            max_prepost,
            ..MpiConfig::scheme(FlowControlScheme::UserDynamic, 2)
        };
        let out = MpiWorld::run(2, cfg, FabricParams::mt23108(), move |mpi| {
            if mpi.rank() == 0 {
                let reqs: Vec<_> = (0..burst).map(|i| mpi.isend(&i.to_le_bytes(), 1, 0)).collect();
                mpi.waitall(&reqs);
            } else {
                mpi.compute(ibflow::ibsim::SimDuration::millis(1));
                for _ in 0..burst {
                    let _ = mpi.recv(Some(0), Some(0));
                }
            }
        })
        .expect("run failed");
        let peak = out.stats.max_posted_buffers();
        prop_assert!(peak <= max_prepost as u64, "peak {peak} exceeds cap {max_prepost}");
    }
}
