//! CI/script parity: `ci/check.sh` is documented as a local mirror of
//! `.github/workflows/ci.yml`. This test makes that claim checkable —
//! every cargo invocation in one must appear in the other, so a perf
//! tripwire or golden gate added to one file can't silently be missing
//! from the other.

use std::collections::BTreeSet;
use std::path::Path;

/// Strips `env VAR=val …` prefixes, a leading `time`, and output
/// redirections, then normalises whitespace. Returns `None` for
/// non-cargo commands.
fn normalize_cargo(cmd: &str) -> Option<String> {
    let mut toks: Vec<&str> = cmd.split_whitespace().collect();
    while let Some(first) = toks.first() {
        match *first {
            "env" | "time" => {
                toks.remove(0);
                // `env` is followed by VAR=val assignments.
                while toks.first().is_some_and(|t| t.contains('=')) {
                    toks.remove(0);
                }
            }
            _ => break,
        }
    }
    if toks.first() != Some(&"cargo") {
        return None;
    }
    // Drop shell redirections (`>/dev/null`, `2>&1`, …).
    toks.retain(|t| !t.contains('>'));
    Some(toks.join(" "))
}

/// Cargo invocations from `ci/check.sh`: lines run through the `run` or
/// `timed` helpers.
fn check_sh_invocations(src: &str) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for line in src.lines() {
        let line = line.trim();
        let cmd = match line
            .strip_prefix("run ")
            .or_else(|| line.strip_prefix("timed "))
        {
            Some(c) => c,
            None => continue,
        };
        if let Some(n) = normalize_cargo(cmd) {
            out.insert(n);
        }
    }
    out
}

/// Cargo invocations from `ci.yml`: `run:` step values plus the lines of
/// `run: |` block scalars (which appear indented, starting with `cargo`
/// after a leading `time`/`env` at most).
fn ci_yml_invocations(src: &str) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for line in src.lines() {
        let line = line.trim();
        if line.starts_with('#') {
            continue;
        }
        let cmd = line.strip_prefix("run: ").unwrap_or(line);
        if let Some(n) = normalize_cargo(cmd) {
            out.insert(n);
        }
    }
    out
}

#[test]
fn check_script_and_workflow_agree() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let sh = std::fs::read_to_string(root.join("ci/check.sh")).expect("read ci/check.sh");
    let yml = std::fs::read_to_string(root.join(".github/workflows/ci.yml"))
        .expect("read .github/workflows/ci.yml");

    let from_sh = check_sh_invocations(&sh);
    let from_yml = ci_yml_invocations(&yml);

    // Guard against the extractors themselves rotting: both files are
    // expected to carry the full battery, far more than a couple of
    // steps.
    assert!(
        from_sh.len() >= 8,
        "suspiciously few cargo invocations parsed from ci/check.sh: {from_sh:#?}"
    );
    assert!(
        from_yml.len() >= 8,
        "suspiciously few cargo invocations parsed from ci.yml: {from_yml:#?}"
    );

    let only_sh: Vec<_> = from_sh.difference(&from_yml).collect();
    let only_yml: Vec<_> = from_yml.difference(&from_sh).collect();
    assert!(
        only_sh.is_empty() && only_yml.is_empty(),
        "ci/check.sh and .github/workflows/ci.yml disagree.\n\
         only in check.sh: {only_sh:#?}\nonly in ci.yml: {only_yml:#?}"
    );
}

#[test]
fn normalization_strips_wrappers() {
    assert_eq!(
        normalize_cargo("env IBFLOW_JOBS=4 cargo test -q").as_deref(),
        Some("cargo test -q")
    );
    assert_eq!(
        normalize_cargo("time cargo run --bin chaos >/dev/null").as_deref(),
        Some("cargo run --bin chaos")
    );
    assert_eq!(normalize_cargo("echo cargo"), None);
}
