//! Cross-crate integration: the umbrella crate's public surface drives
//! fabric, MPI, and application kernels together.

use ibflow::ibfabric::FabricParams;
use ibflow::ibsim::SimDuration;
use ibflow::mpib::collectives::{allreduce_scalars, barrier};
use ibflow::mpib::{Comm, FlowControlScheme, MpiConfig, MpiWorld, ReduceOp};
use ibflow::nasbench::common::Kernel;
use ibflow::nasbench::{run_kernel, NasClass};

#[test]
fn umbrella_reexports_compose() {
    let cfg = MpiConfig::scheme(FlowControlScheme::UserDynamic, 4);
    let out = MpiWorld::run(4, cfg, FabricParams::mt23108(), async |mpi| {
        let world = Comm::world(mpi);
        barrier(mpi, &world).await;
        let s = allreduce_scalars(mpi, &world, ReduceOp::Sum, &[mpi.rank() as f64]).await;
        mpi.compute(SimDuration::micros(5)).await;
        s[0]
    })
    .unwrap();
    assert!(out.results.iter().all(|&v| v == 6.0));
}

#[test]
fn every_kernel_under_every_scheme_at_test_class() {
    for kernel in Kernel::ALL {
        let procs = if kernel.needs_square_procs() { 4 } else { 8 };
        for scheme in [
            FlowControlScheme::Hardware,
            FlowControlScheme::UserStatic,
            FlowControlScheme::UserDynamic,
        ] {
            let cfg = MpiConfig::scheme(scheme, 4);
            let out = MpiWorld::run(procs, cfg, FabricParams::mt23108(), async move |mpi| {
                run_kernel(mpi, kernel, NasClass::Test).await
            })
            .unwrap_or_else(|e| panic!("{kernel:?}/{scheme:?}: {e}"));
            assert!(out.results[0].verified, "{kernel:?}/{scheme:?}");
        }
    }
}

#[test]
fn fabric_stats_surface_through_umbrella() {
    // A hardware-scheme burst into a tiny pool must surface RNR activity
    // through the re-exported fabric statistics.
    let cfg = MpiConfig::scheme(FlowControlScheme::Hardware, 1);
    let out = MpiWorld::run(2, cfg, FabricParams::mt23108(), async |mpi| {
        if mpi.rank() == 0 {
            let reqs: Vec<_> = (0..30u32)
                .map(|i| mpi.isend(&i.to_le_bytes(), 1, 0))
                .collect();
            mpi.waitall(&reqs).await;
        } else {
            mpi.compute(SimDuration::millis(1)).await;
            for _ in 0..30 {
                let _ = mpi.recv(Some(0), Some(0)).await;
            }
        }
    })
    .unwrap();
    assert!(out.fabric.stats.rnr_naks.get() > 0);
    assert!(out.fabric.stats.msgs_delivered.get() >= 30);
    assert_eq!(
        out.fabric.stats.retransmissions.get(),
        out.fabric.stats.rnr_naks.get()
    );
}

#[test]
fn sixteen_rank_world_runs_bt() {
    // The paper's BT/SP configuration: 16 processes.
    let cfg = MpiConfig::scheme(FlowControlScheme::UserDynamic, 8);
    let out = MpiWorld::run(16, cfg, FabricParams::mt23108(), async |mpi| {
        run_kernel(mpi, Kernel::Bt, NasClass::Test).await
    })
    .unwrap();
    assert!(out.results.iter().all(|r| r.verified));
    let ck = out.results[0].checksum.to_bits();
    assert!(out.results.iter().all(|r| r.checksum.to_bits() == ck));
}

#[test]
fn ring_of_256_ranks_on_one_os_thread() {
    // Ranks are coroutines, not threads: a 256-rank world must complete
    // a verified ring exchange entirely on the calling thread. Each rank
    // tells its right neighbour who it is and checks what it hears from
    // the left.
    let n = 256usize;
    let caller = std::thread::current().id();
    let cfg = MpiConfig::scheme(FlowControlScheme::UserDynamic, 4);
    let out = MpiWorld::run(n, cfg, FabricParams::ideal(), async move |mpi| {
        let me = mpi.rank();
        let right = (me + 1) % n;
        let left = (me + n - 1) % n;
        mpi.send(&(me as u32).to_le_bytes(), right, 7).await;
        let (_, d) = mpi.recv(Some(left), Some(7)).await;
        assert_eq!(u32::from_le_bytes(d.try_into().unwrap()) as usize, left);
        std::thread::current().id()
    })
    .unwrap();
    assert_eq!(out.results.len(), n);
    assert!(
        out.results.iter().all(|&t| t == caller),
        "every rank must run on the caller's OS thread"
    );
}

#[test]
fn ideal_fabric_params_also_work() {
    // The protocol logic must be timing-model independent.
    let cfg = MpiConfig::scheme(FlowControlScheme::UserStatic, 2);
    let out = MpiWorld::run(2, cfg, FabricParams::ideal(), async |mpi| {
        if mpi.rank() == 0 {
            mpi.send(&vec![9u8; 50_000], 1, 1).await;
            0
        } else {
            let (st, d) = mpi.recv(Some(0), Some(1)).await;
            assert!(d.iter().all(|&b| b == 9));
            st.len
        }
    })
    .unwrap();
    assert_eq!(out.results[1], 50_000);
}
