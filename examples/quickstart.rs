//! Quickstart: a tiny MPI program on the simulated InfiniBand cluster.
//!
//! Four ranks compute a distributed dot product: each holds a slice of two
//! vectors, exchanges halo-style messages with its neighbour, and reduces
//! the global result — exercising eager sends, collectives, and the flow
//! control machinery underneath.
//!
//! Run with: `cargo run --release --example quickstart`

use ibflow::ibfabric::FabricParams;
use ibflow::mpib::collectives::allreduce_scalars;
use ibflow::mpib::{Comm, FlowControlScheme, MpiConfig, MpiWorld, ReduceOp};

fn main() {
    let cfg = MpiConfig::scheme(FlowControlScheme::UserDynamic, 8);
    let n_per_rank = 1000usize;

    let out = MpiWorld::run(4, cfg, FabricParams::mt23108(), async move |mpi| {
        let world = Comm::world(mpi);
        let me = mpi.rank();

        // Local slices of x = [1, 2, 3, ...] and y = all-ones.
        let base = me * n_per_rank;
        let x: Vec<f64> = (0..n_per_rank).map(|i| (base + i + 1) as f64).collect();
        let y = vec![1.0f64; n_per_rank];
        let local: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();

        // A neighbour exchange, just to show point-to-point traffic.
        let right = (me + 1) % mpi.size();
        let left = (me + mpi.size() - 1) % mpi.size();
        let (status, from_left) = mpi
            .sendrecv(&local.to_le_bytes(), right, 7, Some(left), Some(7))
            .await;
        let left_val = f64::from_le_bytes(from_left.try_into().unwrap());
        println!(
            "rank {me}: local dot = {local:>12.0}, neighbour {} contributed {left_val:>12.0}",
            status.source
        );

        // The global reduction.
        allreduce_scalars(mpi, &world, ReduceOp::Sum, &[local]).await[0]
    })
    .expect("simulation failed");

    let n_total = 4 * n_per_rank;
    let expect = (n_total * (n_total + 1) / 2) as f64;
    println!(
        "\nglobal dot product: {} (expected {expect})",
        out.results[0]
    );
    println!("virtual time: {}", out.end_time);
    println!("simulator events: {}", out.events);
    assert_eq!(out.results[0], expect);
}
