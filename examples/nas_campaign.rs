//! Runs a NAS kernel under all three flow control schemes and prints the
//! paper-style comparison: runtime, explicit credit messages, dynamic
//! buffer growth, and fabric-level RNR activity.
//!
//! Run with: `cargo run --release --example nas_campaign [KERNEL] [PREPOST]`
//! e.g.      `cargo run --release --example nas_campaign LU 1`
//! Kernels: IS FT LU CG MG BT SP (default LU). Default pre-post: 1.

use ibflow::ibfabric::FabricParams;
use ibflow::mpib::{FlowControlScheme, MpiConfig, MpiWorld};
use ibflow::nasbench::common::Kernel;
use ibflow::nasbench::{run_kernel, NasClass};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let kernel = args
        .get(1)
        .map(|s| Kernel::from_name(s).expect("unknown kernel (IS FT LU CG MG BT SP)"))
        .unwrap_or(Kernel::Lu);
    let prepost: u32 = args
        .get(2)
        .map(|s| s.parse().expect("prepost"))
        .unwrap_or(1);
    let procs = kernel.paper_procs();

    println!(
        "NAS {} (class W) on {procs} simulated nodes, pre-post = {prepost} buffers/connection\n",
        kernel.name()
    );
    println!(
        "{:>13} {:>10} {:>9} {:>10} {:>8} {:>8} {:>6}",
        "scheme", "time (ms)", "verified", "ECM/conn", "maxbuf", "RNR", "retx"
    );

    for scheme in [
        FlowControlScheme::Hardware,
        FlowControlScheme::UserStatic,
        FlowControlScheme::UserDynamic,
    ] {
        let cfg = MpiConfig::scheme(scheme, prepost);
        let out = MpiWorld::run(procs, cfg, FabricParams::mt23108(), async move |mpi| {
            run_kernel(mpi, kernel, NasClass::W).await
        })
        .expect("kernel run");
        let k = &out.results[0];
        println!(
            "{:>13} {:>10.2} {:>9} {:>10.1} {:>8} {:>8} {:>6}",
            scheme.label(),
            out.results
                .iter()
                .map(|r| r.time.as_secs_f64() * 1e3)
                .fold(0.0, f64::max),
            k.verified,
            out.stats.avg_ecm_per_connection(),
            out.stats.max_posted_buffers(),
            out.fabric.stats.rnr_naks.get(),
            out.fabric.stats.retransmissions.get(),
        );
    }
    println!(
        "\nTry `LU 1` (the paper's outlier: credit messages + pool growth) vs \
         `FT 1` (large-message rendezvous: insensitive to buffering)."
    );
}
