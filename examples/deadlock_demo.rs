//! Demonstrates *why* the paper's explicit credit messages must bypass
//! flow control (the "optimistic" scheme, §4.2).
//!
//! Two ranks blast small messages at each other until both run out of
//! credits, then try to receive. Under the deliberately broken
//! `NaiveGated` mode — credit messages themselves need credits and the
//! credit-less rendezvous conversion is disabled — nobody can ever tell
//! the other side about freed buffers, and the simulator's deadlock
//! detector catches the wedge with a per-rank diagnostic. The same
//! program completes under the optimistic and RDMA credit paths.
//!
//! Run with: `cargo run --release --example deadlock_demo`

use ibflow::ibfabric::FabricParams;
use ibflow::ibsim::{SimConfig, SimTime};
use ibflow::mpib::{CreditMsgMode, FlowControlScheme, MpiConfig, MpiRunError, MpiWorld};

async fn pattern(mpi: &mut ibflow::mpib::MpiRank) -> u64 {
    let peer = 1 - mpi.rank();
    // Pre-posting the receives keeps this a *safe* MPI program: any
    // correct flow control design must complete it.
    let rreqs: Vec<_> = (0..30).map(|_| mpi.irecv(Some(peer), Some(0))).collect();
    let sreqs: Vec<_> = (0..30u32)
        .map(|i| mpi.isend(&i.to_le_bytes(), peer, 0))
        .collect();
    mpi.waitall(&sreqs).await;
    let mut sum = 0u64;
    for r in rreqs {
        let (_, d) = mpi.wait_recv(r).await;
        sum += u32::from_le_bytes(d.try_into().unwrap()) as u64;
    }
    sum
}

fn run(mode: CreditMsgMode) -> Result<u64, MpiRunError> {
    let cfg = MpiConfig {
        credit_msg_mode: mode,
        ..MpiConfig::scheme(FlowControlScheme::UserStatic, 2)
    };
    // A generous virtual-time budget: a wedged run ends in a clean
    // deadlock report instead of spinning.
    let limits = SimConfig {
        max_time: SimTime::from_nanos(50_000_000),
        ..Default::default()
    };
    MpiWorld::run_with_limits(2, cfg, FabricParams::mt23108(), limits, pattern)
        .map(|out| out.results[0])
}

fn main() {
    println!("Bidirectional 30-message burst, 2 pre-posted buffers per connection.\n");
    for (name, mode) in [
        (
            "optimistic credit messages (the paper's scheme)",
            CreditMsgMode::Optimistic,
        ),
        (
            "RDMA-written credit mailboxes (the paper's alternative)",
            CreditMsgMode::Rdma,
        ),
        (
            "naive credit-gated credit messages (broken on purpose)",
            CreditMsgMode::NaiveGated,
        ),
    ] {
        println!("== {name}");
        match run(mode) {
            Ok(sum) => println!("   completed, checksum {sum}\n"),
            Err(e) => println!("   {e}\n"),
        }
    }
}
