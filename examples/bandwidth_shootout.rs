//! The paper's central micro-benchmark drama, live: small-message
//! bandwidth when the burst window exceeds the pre-posted buffer pool
//! (Figures 5–6). Watch the user-level static scheme collapse into its
//! backlog while the dynamic scheme grows its pool and keeps pace with
//! the hardware's end-to-end flow control.
//!
//! Run with: `cargo run --release --example bandwidth_shootout`

use ibflow::ibfabric::FabricParams;
use ibflow::mpib::{FlowControlScheme, MpiConfig, MpiWorld};

/// Windowed bandwidth (MB/s): `window` back-to-back 4-byte messages, then
/// a 4-byte reply, repeated — the paper's §6.2.2 protocol.
fn bandwidth(scheme: FlowControlScheme, prepost: u32, window: u32) -> f64 {
    let iters = 20u32;
    let warmup = 4u32;
    let out = MpiWorld::run(
        2,
        MpiConfig::scheme(scheme, prepost),
        FabricParams::mt23108(),
        async move |mpi| {
            let peer = 1 - mpi.rank();
            let payload = [0xA5u8; 4];
            let mut measured = 0u64;
            for it in 0..warmup + iters {
                let t0 = mpi.now();
                if mpi.rank() == 0 {
                    let reqs: Vec<_> = (0..window).map(|_| mpi.isend(&payload, peer, 2)).collect();
                    mpi.waitall(&reqs).await;
                    let _ = mpi.recv(Some(peer), Some(3)).await;
                } else {
                    let reqs: Vec<_> = (0..window)
                        .map(|_| mpi.irecv(Some(peer), Some(2)))
                        .collect();
                    mpi.waitall(&reqs).await;
                    mpi.send(&[0u8; 4], peer, 3).await;
                }
                if it >= warmup {
                    measured += mpi.now().since(t0).as_nanos();
                }
            }
            measured
        },
    )
    .expect("bandwidth run");
    let secs = out.results[0] as f64 / 1e9;
    (iters as u64 * window as u64 * 4) as f64 / secs / 1e6
}

fn main() {
    let prepost = 10;
    println!("4-byte message bandwidth (MB/s), pre-post = {prepost} buffers/connection\n");
    println!(
        "{:>8} {:>14} {:>14} {:>14}",
        "window", "hardware", "user-static", "user-dynamic"
    );
    for window in [1u32, 4, 8, 16, 32, 64, 100] {
        let hw = bandwidth(FlowControlScheme::Hardware, prepost, window);
        let st = bandwidth(FlowControlScheme::UserStatic, prepost, window);
        let dy = bandwidth(FlowControlScheme::UserDynamic, prepost, window);
        let marker = if window > prepost {
            "  <- window exceeds pool"
        } else {
            ""
        };
        println!("{window:>8} {hw:>14.3} {st:>14.3} {dy:>14.3}{marker}");
    }
    println!(
        "\nBeyond the pre-posted window the static scheme stalls in its backlog \
         (credits only return via explicit credit messages), while the dynamic \
         scheme's feedback grows the receiver's pool until the burst fits."
    );
}
